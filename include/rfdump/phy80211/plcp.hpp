#pragma once
// 802.11b PLCP (Physical Layer Convergence Procedure) framing: the long
// preamble (SYNC + SFD) and the PLCP header (SIGNAL, SERVICE, LENGTH, CRC-16)
// that precede every DSSS MPDU. The preamble and header are always sent at
// 1 Mbps DBPSK; the SIGNAL field announces the payload rate.

#include <cstdint>
#include <optional>

#include "rfdump/util/bits.hpp"

namespace rfdump::phy80211 {

/// Payload data rates of 802.11b.
enum class Rate : std::uint8_t {
  k1Mbps = 0x0A,    // SIGNAL field value = rate in 100 kbit/s units
  k2Mbps = 0x14,
  k5_5Mbps = 0x37,
  k11Mbps = 0x6E,
};

/// Bits per payload symbol for a rate (payload symbol rate is 1 Msym/s for
/// Barker rates; CCK runs 1.375 Msym/s with 4 or 8 bits/symbol).
[[nodiscard]] double RateMbps(Rate r);
[[nodiscard]] const char* RateName(Rate r);

/// Number of 1 Mbps-DBPSK symbols in the long preamble + PLCP header
/// (128 SYNC + 16 SFD + 48 header = 192 symbols = 192 us).
inline constexpr std::size_t kLongPreambleHeaderSymbols = 192;
inline constexpr std::size_t kSyncBits = 128;
inline constexpr std::uint16_t kSfd = 0xF3A0;  // transmitted LSB-first

/// Short preamble (Clause 18.2.2.3): 56 scrambled ZEROS + time-reversed SFD,
/// then the 48-bit header at 2 Mbps DQPSK (24 symbols). Total 96 us instead
/// of 192. Only 2/5.5/11 Mbps payloads may follow a short preamble.
inline constexpr std::size_t kShortSyncBits = 56;
inline constexpr std::uint16_t kShortSfd = 0x05CF;  // kSfd bit-reversed
inline constexpr std::size_t kShortPreambleHeaderSymbols =
    kShortSyncBits + 16 + 24;  // 96 symbols = 96 us

/// SERVICE-field bit 7: the 11 Mbps length-extension bit (Clause 18.2.3.5).
/// At 11 Mbps a microsecond spans 1.375 bytes, so LENGTH alone is ambiguous;
/// the bit disambiguates the rounding.
inline constexpr std::uint8_t kServiceLengthExt = 0x80;

/// Parsed PLCP header.
struct PlcpHeader {
  Rate rate;
  std::uint8_t service = 0;
  std::uint16_t length_us = 0;  // duration of the MPDU in microseconds

  /// MPDU length in bytes implied by rate + duration (+ length-extension
  /// bit for 11 Mbps).
  [[nodiscard]] std::size_t MpduBytes() const;

  /// Duration field for an MPDU of `bytes` at `rate`.
  [[nodiscard]] static std::uint16_t DurationUsFor(Rate rate,
                                                   std::size_t bytes);

  /// SERVICE field for an MPDU of `bytes` at `rate` (sets the length
  /// extension bit when the 11 Mbps rounding requires it).
  [[nodiscard]] static std::uint8_t ServiceFor(Rate rate, std::size_t bytes);
};

/// Serializes the full PLCP preamble + header to unscrambled bits
/// (SYNC ones, SFD, SIGNAL, SERVICE, LENGTH, CRC-16 complemented), in
/// transmission order.
[[nodiscard]] util::BitVec BuildPlcpBits(const PlcpHeader& header);

/// Short-preamble variant: 56 zero SYNC bits + reversed SFD + the same
/// 48 header bits (which the modulator sends at 2 Mbps).
[[nodiscard]] util::BitVec BuildShortPlcpBits(const PlcpHeader& header);

/// Attempts to parse a PLCP header from 48 descrambled bits that follow an
/// SFD. Returns nullopt if the CRC-16 check fails or the SIGNAL value is not
/// a valid 802.11b rate.
[[nodiscard]] std::optional<PlcpHeader> ParsePlcpHeader(
    std::span<const std::uint8_t> bits48);

}  // namespace rfdump::phy80211
