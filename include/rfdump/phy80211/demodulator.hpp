#pragma once
// 802.11b DSSS demodulator (1 and 2 Mbps Barker rates).
//
// This plays the role of the BBN/ADROIT decoder in the paper's analysis
// stage: given a window of 8 Msps samples it resamples to chip rate,
// despreads with a Barker correlator, recovers symbol timing, slices the
// differential phase, descrambles, locks onto SYNC+SFD, validates the PLCP
// header CRC and finally checks the MPDU FCS. CCK rates (5.5/11) are
// detected via the PLCP header but not payload-decoded, matching the paper's
// prototype limitation.

#include <cstdint>
#include <optional>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/phy80211/plcp.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::phy80211 {

/// Result of decoding one frame.
struct DecodedFrame {
  PlcpHeader header;
  std::vector<std::uint8_t> mpdu;   // payload bytes including FCS (empty for
                                    // rates the prototype cannot decode)
  bool payload_decoded = false;     // false for CCK rates / truncated windows
  bool fcs_ok = false;              // CRC-32 over the decoded MPDU
  std::int64_t start_sample = 0;    // frame start within the scanned span
  std::int64_t end_sample = 0;      // one past the frame's last sample
};

/// Demodulator work/cost counters, used by the efficiency experiments: the
/// number of front-end samples this instance has fully processed.
struct DemodStats {
  std::uint64_t samples_processed = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t sync_attempts = 0;
};

class Demodulator {
 public:
  struct Config {
    /// Minimum normalized Barker correlation to consider a chip window part
    /// of a DSSS transmission.
    float correlation_threshold = 0.55f;
    /// Symbols of consecutive correlation needed to attempt sync.
    std::size_t min_sync_symbols = 24;
    /// Decode CCK (5.5/11 Mbps) payloads via codeword correlation. This goes
    /// beyond the paper's prototype (whose BBN decoder handled 1/2 Mbps
    /// only); with just 8 of the 22 MHz captured it needs high SNR.
    bool decode_cck = true;
    /// Cooperative deadline (non-owning, armed by the supervision layer):
    /// the sync-search and payload-decode loops charge their work against it
    /// and return early — keeping frames already decoded — once it expires.
    /// Null = unlimited.
    util::WorkBudget* budget = nullptr;
  };

  Demodulator();
  explicit Demodulator(Config config);

  /// Scans `x` (8 Msps baseband) and decodes every frame found.
  [[nodiscard]] std::vector<DecodedFrame> DecodeAll(dsp::const_sample_span x);

  /// Decodes the first frame at/after the start of `x`, if any.
  [[nodiscard]] std::optional<DecodedFrame> DecodeFirst(
      dsp::const_sample_span x);

  const DemodStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  Config config_;
  DemodStats stats_;
};

}  // namespace rfdump::phy80211
