#pragma once
// IEEE 802.11b self-synchronizing scrambler, polynomial
// G(z) = z^-7 + z^-4 + 1 (Clause 17.2.4). Every DSSS transmission is
// scrambled; the long-preamble SYNC field is 128 scrambled ones, which is how
// the demodulator locks its descrambler before the SFD arrives.

#include <cstdint>

#include "rfdump/util/bits.hpp"

namespace rfdump::phy80211 {

/// Streaming scrambler. The transmitter seeds the register with 0x1B (long
/// preamble) or 0x6C (short preamble) per the standard.
class Scrambler {
 public:
  static constexpr std::uint8_t kLongPreambleSeed = 0x1B;
  static constexpr std::uint8_t kShortPreambleSeed = 0x6C;

  explicit Scrambler(std::uint8_t seed = kLongPreambleSeed) : state_(seed) {}

  /// Scrambles one bit.
  std::uint8_t ScrambleBit(std::uint8_t bit);

  /// Scrambles a whole bit vector.
  [[nodiscard]] util::BitVec Scramble(std::span<const std::uint8_t> bits);

 private:
  std::uint8_t state_;  // 7-bit shift register, bit0 = most recent output
};

/// Streaming descrambler. Self-synchronizing: after 7 received bits it
/// produces correct output regardless of the transmitter seed.
class Descrambler {
 public:
  explicit Descrambler(std::uint8_t seed = 0) : state_(seed) {}

  std::uint8_t DescrambleBit(std::uint8_t bit);

  [[nodiscard]] util::BitVec Descramble(std::span<const std::uint8_t> bits);

 private:
  std::uint8_t state_;
};

}  // namespace rfdump::phy80211
