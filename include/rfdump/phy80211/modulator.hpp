#pragma once
// 802.11b DSSS modulator.
//
// Produces the complex-baseband waveform of a long-preamble 802.11b frame as
// the (emulated) 8 Msps front-end would capture it: the 11 Mchip/s chip
// stream (Barker-spread DBPSK/DQPSK at 1/2 Mbps, CCK at 5.5/11 Mbps) is
// rationally resampled 8/11 to the front-end rate, which band-limits the
// 22 MHz-wide signal to the captured 8 MHz exactly like the USRP capture path
// in the paper (§4.1).

#include <cstdint>
#include <span>

#include "rfdump/dsp/types.hpp"
#include "rfdump/phy80211/plcp.hpp"

namespace rfdump::phy80211 {

/// Converts an MPDU (MAC frame bytes, FCS included) into baseband samples.
class Modulator {
 public:
  struct Config {
    float amplitude = 1.0f;   // RMS chip amplitude
    std::size_t pad_samples = 8;  // trailing zero samples after the frame
    /// Short PLCP preamble (96 us instead of 192; payload must be >= 2 Mbps).
    bool short_preamble = false;
  };

  Modulator();
  explicit Modulator(Config config);

  /// Full frame: PLCP long preamble + header at 1 Mbps DBPSK, then the MPDU
  /// at `rate`. Returns 8 Msps samples.
  [[nodiscard]] dsp::SampleVec Modulate(std::span<const std::uint8_t> mpdu,
                                        Rate rate);

  /// Number of 8 Msps samples a frame of `mpdu_bytes` at `rate` occupies
  /// (airtime x 8 Msps), excluding padding.
  [[nodiscard]] static std::size_t FrameSampleCount(std::size_t mpdu_bytes,
                                                    Rate rate,
                                                    bool short_preamble = false);

  /// Airtime of a frame in microseconds (192 us preamble+header + payload;
  /// 96 us with the short preamble).
  [[nodiscard]] static double FrameAirtimeUs(std::size_t mpdu_bytes, Rate rate,
                                             bool short_preamble = false);

  /// Exposed for tests: the 11 Mchip/s complex chip stream for a frame.
  [[nodiscard]] dsp::SampleVec ChipStream(std::span<const std::uint8_t> mpdu,
                                          Rate rate);

 private:
  Config config_;
};

/// CCK codeword for one 5.5 or 11 Mbps symbol: 8 complex chips from the four
/// phases (phi1..phi4) per IEEE 802.11-2007 17.4.6.6. Exposed for tests.
[[nodiscard]] std::array<dsp::cfloat, 8> CckCodeword(float phi1, float phi2,
                                                     float phi3, float phi4);

}  // namespace rfdump::phy80211
