#pragma once
// RF channel and front-end impairment models.
//
// The emulator composes these to turn ideal modulator output into the kind of
// stream a real USRP capture contains: scaled to a target SNR, shifted by
// carrier frequency offset, passed through (optional) multipath, summed with
// white Gaussian noise, and quantized by an N-bit ADC.

#include <cstdint>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/rng.hpp"

namespace rfdump::channel {

/// Adds complex AWGN with the given per-sample noise power (variance split
/// evenly across I and Q).
void AddAwgn(rfdump::dsp::sample_span io, double noise_power,
             rfdump::util::Xoshiro256& rng);

/// Scales `io` so that its mean power equals `target_power`. No-op on silence.
void ScaleToPower(rfdump::dsp::sample_span io, double target_power);

/// Applies a carrier frequency offset of `offset_hz` (rotates samples by a
/// linearly increasing phase). `start_sample` keeps streams phase-continuous
/// when processed in chunks.
void ApplyFrequencyOffset(rfdump::dsp::sample_span io, double offset_hz,
                          double sample_rate, std::int64_t start_sample);

/// Static tapped-delay-line multipath channel.
class Multipath {
 public:
  struct Tap {
    std::size_t delay_samples;
    rfdump::dsp::cfloat gain;
  };

  /// `taps` must contain at least the direct path. Normalizes total tap power
  /// to 1 so multipath does not change mean signal power.
  explicit Multipath(std::vector<Tap> taps);

  [[nodiscard]] rfdump::dsp::SampleVec Apply(
      rfdump::dsp::const_sample_span input) const;

  const std::vector<Tap>& taps() const { return taps_; }

 private:
  std::vector<Tap> taps_;
};

/// N-bit ADC model: clamps to [-full_scale, full_scale] and rounds to
/// 2^bits levels per rail. The USRP 1 has 12-bit converters.
void Quantize(rfdump::dsp::sample_span io, unsigned bits, float full_scale);

/// Computes the noise power that yields `snr_db` for a signal of
/// `signal_power`.
[[nodiscard]] double NoisePowerForSnr(double signal_power, double snr_db);

}  // namespace rfdump::channel
