#pragma once
// Non-protocol RF sources sharing the 2.4 GHz band: the residential microwave
// oven the paper's Table 2 lists (constant-envelope sweep keyed to the AC
// cycle), plus generic CW and impulse interferers used for robustness tests.

#include <cstdint>

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/rng.hpp"

namespace rfdump::rfsources {

/// Residential microwave oven model. The magnetron radiates during roughly
/// half of each AC cycle (60 Hz -> 16.67 ms period, ~8 ms on) with constant
/// envelope; its frequency drifts through tens of MHz, which inside our 8 MHz
/// capture appears as a slow chirp crossing the band.
class MicrowaveOven {
 public:
  struct Config {
    double ac_hz = 60.0;           // mains frequency
    double duty = 0.5;             // fraction of the cycle with RF emission
    double sweep_hz = 3.0e6;       // peak-to-peak in-band frequency excursion
    double sweep_rate_hz = 120.0;  // sweep oscillation rate
    float amplitude = 1.0f;
    double phase_noise_rad = 0.02; // per-sample random walk std-dev
  };

  MicrowaveOven();
  explicit MicrowaveOven(Config config, std::uint64_t seed = 0xC0FFEE);

  /// Synthesizes samples [start, start+count) of the oven's emission at
  /// 8 Msps. Off-phase samples are zero.
  [[nodiscard]] dsp::SampleVec Generate(std::int64_t start_sample,
                                        std::size_t count);

  /// True if the oven radiates at the given absolute sample index.
  [[nodiscard]] bool IsOn(std::int64_t sample) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  util::Xoshiro256 rng_;
  double noise_phase_ = 0.0;
};

/// Continuous-wave (single tone) interferer at a fixed offset.
[[nodiscard]] dsp::SampleVec GenerateCw(double offset_hz, float amplitude,
                                        std::int64_t start_sample,
                                        std::size_t count);

/// Broadband impulse noise: `count` samples with short random full-band
/// bursts (e.g. from ignition or bad electronics).
[[nodiscard]] dsp::SampleVec GenerateImpulses(std::size_t count,
                                              double burst_rate_hz,
                                              std::size_t burst_samples,
                                              float amplitude,
                                              util::Xoshiro256& rng);

}  // namespace rfdump::rfsources
