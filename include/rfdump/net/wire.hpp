#pragma once
// Framed wire format for the multi-sensor fleet (DESIGN.md §12).
//
// Sensors ship MonitorReport events, health reports and heartbeats to the
// central aggregator over links that drop, duplicate, reorder and corrupt
// bytes (net/faulty_link.hpp emulates such a link in-process). The frame
// layer is the part that must survive all of that:
//
//   * length-prefixed frames with a fixed 16-byte header, so a reader never
//     over-reads a stream that was cut mid-frame;
//   * CRC32 (IEEE 802.3, the same util::Crc32 the 802.11 FCS uses) over
//     header + payload, so a corrupted frame is *dropped*, never decoded;
//   * a version byte, so a future header revision is rejected cleanly
//     instead of misparsed;
//   * per-sensor monotonic sequence numbers on data frames, so the receiver
//     can detect loss, discard duplicates and reorder — control frames
//     (hello / heartbeat / ack) carry seq 0 and are idempotent.
//
// FrameParser consumes an arbitrary byte stream incrementally: partial
// frames wait for more bytes, corrupt frames are skipped by re-scanning for
// the magic from the next byte (resync), and every discard reason is
// counted. Encode → parse round-trip is the conformance gate
// (tests/net_test.cpp).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace rfdump::net {

inline constexpr std::uint16_t kWireMagic = 0x4652;  // "RF", little-endian
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kFrameTrailerBytes = 4;  // CRC32
/// Upper bound a receiver enforces on payload_len before trusting it; a
/// corrupted length field must not make the parser wait forever for bytes
/// that will never come.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

/// Frame type tags. Data frames (sequenced, retransmitted until acked) and
/// control frames (seq 0, idempotent, never retransmitted) are disjoint
/// ranges so a receiver can classify without a table.
enum class FrameType : std::uint8_t {
  // Control frames.
  kHello = 1,      // session (re)establishment; carries the sensor epoch
  kHeartbeat = 2,  // liveness + clock sample (sensor local time)
  kAck = 3,        // aggregator -> sensor cumulative ack
  kMetrics = 4,    // absolute-value metrics snapshot (federation, DESIGN §13)
  // Data frames.
  kEventBatch = 16,  // decoded transmissions from one monitor block
  kHealth = 17,      // one core::HealthReport
  kGapReport = 18,   // cumulative list of sequence ranges lost by the sensor
};

[[nodiscard]] const char* FrameTypeName(FrameType type);
[[nodiscard]] bool IsDataFrame(FrameType type);

/// Fixed-layout frame header (encoded little-endian, 16 bytes):
///   0  u16  magic   = kWireMagic
///   2  u8   version = kWireVersion
///   3  u8   type
///   4  u16  sensor_id
///   6  u16  header_check  (low 16 bits of CRC32 over the header with this
///                          field zeroed — guards payload_len *before* the
///                          parser commits to waiting for that many bytes;
///                          without it a corrupted-but-plausible length
///                          stalls the stream behind bytes that never come)
///   8  u32  seq           (0 = unsequenced control frame)
///   12 u32  payload_len   (bytes following the header, before the CRC)
struct FrameHeader {
  FrameType type = FrameType::kHeartbeat;
  std::uint16_t sensor_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t payload_len = 0;
};

/// One successfully parsed frame.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload + CRC32 into one contiguous buffer.
[[nodiscard]] std::vector<std::uint8_t> EncodeFrame(
    const FrameHeader& header, std::span<const std::uint8_t> payload);

/// Why the parser discarded bytes (exported so receivers can count and
/// tests can assert the exact reason).
struct ParseStats {
  std::uint64_t frames_ok = 0;
  std::uint64_t bad_magic_bytes = 0;  // bytes skipped hunting for the magic
  std::uint64_t bad_version = 0;
  std::uint64_t bad_type = 0;
  std::uint64_t bad_length = 0;
  std::uint64_t bad_header_checksum = 0;  // header damaged (incl. length)
  std::uint64_t bad_crc = 0;
};

/// Incremental frame reader. Feed arbitrary byte slices (possibly split
/// mid-frame, possibly corrupted); complete CRC-valid frames come out in
/// order. On any header/CRC failure the parser resynchronizes by advancing
/// one byte and re-scanning for the magic, so one corrupt frame never takes
/// down the stream behind it.
class FrameParser {
 public:
  /// Appends bytes and invokes `on_frame` for every complete valid frame.
  void Feed(std::span<const std::uint8_t> bytes,
            const std::function<void(Frame&&)>& on_frame);

  const ParseStats& stats() const { return stats_; }
  /// Bytes buffered waiting for the rest of a frame.
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  ParseStats stats_;
};

// --------------------------------------------------------------- byte I/O
// Little-endian primitive serialization shared by the frame and message
// layers (net/messages.hpp). Reader failure is sticky: once a read runs
// past the end, ok() is false and every subsequent read returns 0.

class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Bytes(std::span<const std::uint8_t> b);

  [[nodiscard]] std::vector<std::uint8_t> Take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t U8();
  [[nodiscard]] std::uint16_t U16();
  [[nodiscard]] std::uint32_t U32();
  [[nodiscard]] std::uint64_t U64();
  [[nodiscard]] std::int64_t I64() {
    return static_cast<std::int64_t>(U64());
  }
  [[nodiscard]] double F64();
  /// Next `n` raw bytes (empty + !ok() on under-run).
  [[nodiscard]] std::vector<std::uint8_t> Bytes(std::size_t n);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] bool Need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rfdump::net
