#pragma once
// Transport <-> session/aggregator glue (DESIGN.md §14).
//
// SensorSession and Aggregator are transport-agnostic: they consume and
// produce encoded frames plus raw inbound bytes. The two classes here own
// the remaining plumbing for a real (reconnecting, multi-connection)
// transport:
//
//   * SensorEndpoint drives one session over a redialable Transport. It
//     dials through a caller-supplied factory, pumps outbound frames into
//     the transport (counting backpressure rejects — the retransmit ring
//     re-offers refused data frames on RTO), feeds received bytes back,
//     and on transport death calls SensorSession::OnTransportDown() so
//     reconnect timing is governed by the session's epoch-bumping backoff:
//     while the session sits in kBackoff no dial is attempted, and the
//     next dial happens when it re-enters kConnecting.
//
//   * AggregatorServer drives one Aggregator over many inbound transports
//     (accepted from a TcpListener, or injected directly in tests). A TCP
//     connection does not announce which sensor it carries, so the server
//     sniffs the first CRC-valid frame on each connection to bind it to
//     that frame's sensor_id — then *replays the connection's raw bytes*
//     into the aggregator, whose own per-sensor FrameParser stays the
//     single authority on parse/corruption accounting. Acks route back to
//     the most recently bound connection per sensor (a reconnect
//     supersedes its dead predecessor).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rfdump/net/aggregator.hpp"
#include "rfdump/net/session.hpp"
#include "rfdump/net/tcp.hpp"
#include "rfdump/net/transport.hpp"

namespace rfdump::net {

class SensorEndpoint {
 public:
  /// Returns a freshly dialed transport (or nullptr to skip this attempt,
  /// e.g. socket creation failed under fd exhaustion).
  using DialFn =
      std::function<std::unique_ptr<Transport>(std::int64_t tick)>;

  struct Stats {
    std::uint64_t dials = 0;
    std::uint64_t transport_down = 0;   // kClosed observed -> session backoff
    std::uint64_t send_rejects = 0;     // frames refused by the transport
    std::uint64_t frames_sent = 0;      // frames the transport accepted
  };

  SensorEndpoint(SensorSession& session, DialFn dial)
      : session_(session), dial_(std::move(dial)) {}

  /// One pump cycle: session tick, (re)dial if due, outbound -> transport,
  /// transport -> session, death -> OnTransportDown.
  void Pump(std::int64_t tick, std::int64_t local_time);

  [[nodiscard]] SensorSession& session() { return session_; }
  [[nodiscard]] Transport* transport() { return transport_.get(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Aggregate of every dead transport's stats plus the live one's.
  [[nodiscard]] Transport::Stats transport_totals() const;

 private:
  void DropTransportLocked();

  SensorSession& session_;
  DialFn dial_;
  std::unique_ptr<Transport> transport_;
  Stats stats_;
  Transport::Stats closed_totals_;  // accumulated from dead transports
  std::vector<std::uint8_t> rx_buf_;
};

class AggregatorServer {
 public:
  struct Config {
    Aggregator::Config aggregator;
    TcpTransport::Config transport;  // applied to accepted connections
    /// Cap on buffered bytes per *unbound* connection (no valid frame seen
    /// yet). A connection that exceeds it without producing one CRC-valid
    /// frame is garbage or hostile: dropped.
    std::size_t max_unbound_bytes = 64 * 1024;
    /// Accepts per Pump, so an accept storm cannot starve the tick.
    int max_accepts_per_pump = 16;
  };

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t adopted = 0;          // transports injected directly
    std::uint64_t bound = 0;            // connections bound to a sensor id
    std::uint64_t closed = 0;
    std::uint64_t unbound_dropped = 0;  // over max_unbound_bytes, no frame
    std::uint64_t ack_frames_sent = 0;
    std::uint64_t ack_send_rejects = 0;
  };

  explicit AggregatorServer(Config config);

  /// Attach the accepting socket (optional; tests may only Adopt()).
  void set_listener(TcpListener* listener) { listener_ = listener; }

  /// Takes ownership of an already-connected transport (server side).
  void Adopt(std::unique_ptr<Transport> transport);

  /// One pump cycle: accept, ingest every connection, tick the aggregator,
  /// route acks, reap dead connections.
  void Pump(std::int64_t tick);

  [[nodiscard]] Aggregator& aggregator() { return aggregator_; }
  [[nodiscard]] const Aggregator& aggregator() const { return aggregator_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t connections() const { return conns_.size(); }

 private:
  struct Connection {
    std::unique_ptr<Transport> transport;
    bool bound = false;
    std::uint16_t sensor_id = 0;
    FrameParser sniffer;              // only used until bound
    std::vector<std::uint8_t> raw;    // bytes held back until bound
    std::uint64_t order = 0;          // adoption order; newest wins acks
  };

  void Ingest(Connection& conn, std::span<const std::uint8_t> bytes);

  Config config_;
  Aggregator aggregator_;
  TcpListener* listener_ = nullptr;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::uint64_t next_order_ = 0;
  Stats stats_;
  std::vector<std::uint8_t> rx_buf_;
};

}  // namespace rfdump::net
