#pragma once
// Syscall boundary for the TCP transport, with seeded fault injection
// (DESIGN.md §14).
//
// net/faulty_link.hpp emulates a hostile *network*; this file emulates a
// hostile *kernel interface* — the failure modes a real deployment actually
// hits are partial reads, EINTR storms, EAGAIN under load, connections
// reset mid-frame, and fd exhaustion, and none of them are reachable from
// an in-memory link. TcpTransport/TcpListener therefore issue every
// data-path syscall through the `Syscalls` interface:
//
//   * Syscalls::Real() forwards to the kernel (production path);
//   * FaultySyscalls wraps any base (normally Real()) and injects faults
//     from one seeded Xoshiro256, recording each injection in a
//     ground-truth log — the syscall-level analogue of FaultyLink's fault
//     log, so the TCP chaos suite can score recovery exactly.
//
// Faults are injected *at the request*, keeping the contract honest: a
// short read trims the caller's length before the real read (the kernel is
// allowed to return less than asked at any time); EINTR/EAGAIN return -1
// with errno set and never touch the fd; a reset closes the real fd (so
// the peer observes EOF and cleans up) and poisons the fd number until the
// caller Close()s it. Bind/listen are not faulted — setup failures are
// loud and boring; the interesting chaos lives on the data path.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "rfdump/util/rng.hpp"

struct sockaddr;

namespace rfdump::net {

/// The data-path syscalls the TCP transport consumes. All sockets are
/// created nonblocking; results follow kernel conventions (-1 + errno).
class Syscalls {
 public:
  virtual ~Syscalls() = default;

  /// The pass-through implementation (a process-lifetime singleton).
  static Syscalls& Real();

  /// New nonblocking TCP socket.
  virtual int Socket();
  /// Nonblocking connect: 0, or -1 with EINPROGRESS/ECONNREFUSED/...
  virtual int Connect(int fd, const sockaddr* addr, unsigned addr_len);
  /// Nonblocking accept: new nonblocking fd, or -1 with EAGAIN/EMFILE/...
  virtual int Accept(int listen_fd);
  virtual ssize_t Read(int fd, void* buf, std::size_t len);
  virtual ssize_t Write(int fd, const void* buf, std::size_t len);
  virtual int Close(int fd);
  /// poll(2) on one fd. Returns >0 if an event in `events` (POLLIN/POLLOUT)
  /// is ready, 0 on timeout, -1 on error.
  virtual int PollOne(int fd, short events, int timeout_ms);
  /// getsockopt(SO_ERROR): the deferred result of a nonblocking connect.
  virtual int SockError(int fd);
};

enum class SyscallFaultKind {
  kShortRead,       // read length trimmed before the kernel saw it
  kShortWrite,      // write length trimmed (lands mid-header/mid-frame)
  kEintr,           // -1/EINTR, fd untouched
  kEagain,          // -1/EAGAIN, fd untouched
  kReadReset,       // -1/ECONNRESET on read; real fd closed, number poisoned
  kWriteReset,      // -1/ECONNRESET on write; real fd closed, number poisoned
  kConnectRefused,  // -1/ECONNREFUSED, no packet ever sent
  kConnectStalled,  // connect never completes; caller's timeout must fire
  kAcceptFail,      // -1/EMFILE (transient) on accept
  kFdLimit,         // socket/accept beyond max_open_fds: -1/EMFILE
};

[[nodiscard]] const char* SyscallFaultKindName(SyscallFaultKind kind);

/// Ground-truth record for one injected syscall fault. `call_index` is the
/// 0-based ordinal of the faultable call (read/write/connect/accept) the
/// injection applied to.
struct SyscallFaultRecord {
  SyscallFaultKind kind = SyscallFaultKind::kEintr;
  std::uint64_t call_index = 0;
  int fd = -1;
  std::size_t bytes = 0;  // requested length (short faults: trimmed-to)
};

/// Seeded fault-injecting Syscalls wrapper. Reproducible bit-for-bit from
/// (config, seed, call sequence) — the same determinism contract as
/// FaultyLink, one layer down.
class FaultySyscalls final : public Syscalls {
 public:
  struct Config {
    double short_read_rate = 0.0;   // P(trim read length)
    int short_read_max = 3;         // trimmed length, uniform [1, N]
    double short_write_rate = 0.0;  // P(trim write length)
    int short_write_max = 5;        // trimmed length, uniform [1, N]
    double eintr_rate = 0.0;        // P(-1/EINTR) per read/write
    double eagain_rate = 0.0;       // P(-1/EAGAIN) per read/write
    double read_reset_rate = 0.0;   // P(ECONNRESET) per read
    double write_reset_rate = 0.0;  // P(ECONNRESET) per write
    double connect_refuse_rate = 0.0;  // P(ECONNREFUSED) per connect
    double connect_stall_rate = 0.0;   // P(connect hangs forever)
    double accept_fail_rate = 0.0;     // P(transient EMFILE) per accept
    /// Cap on fds opened through this shim (0 = unlimited). Socket/Accept
    /// beyond the cap fail with EMFILE — the fd-exhaustion profile.
    std::size_t max_open_fds = 0;
  };

  FaultySyscalls(Config config, std::uint64_t seed,
                 Syscalls& base = Syscalls::Real());

  int Socket() override;
  int Connect(int fd, const sockaddr* addr, unsigned addr_len) override;
  int Accept(int listen_fd) override;
  ssize_t Read(int fd, void* buf, std::size_t len) override;
  ssize_t Write(int fd, const void* buf, std::size_t len) override;
  int Close(int fd) override;
  int PollOne(int fd, short events, int timeout_ms) override;
  int SockError(int fd) override;

  /// Drain mode: stop injecting *new* faults (and stop enforcing the fd
  /// cap) so a chaos run can converge deterministically. Already-poisoned
  /// fds stay poisoned until closed — the damage was real.
  void set_passthrough(bool passthrough) { passthrough_ = passthrough; }

  /// Ground-truth fault log, in injection order.
  [[nodiscard]] const std::vector<SyscallFaultRecord>& faults() const {
    return faults_;
  }
  /// One JSON line per record — the artifact the TCP chaos suite dumps on
  /// failure, next to the FaultyLink logs.
  [[nodiscard]] std::string FaultLogJson() const;

  [[nodiscard]] std::uint64_t calls() const { return calls_; }
  [[nodiscard]] std::size_t open_fds() const { return open_fds_.size(); }

 private:
  bool Roll(double rate) {
    return rate > 0.0 && rng_.UniformDouble() < rate;
  }
  void Record(SyscallFaultKind kind, int fd, std::size_t bytes);
  /// Closes the real fd (peer sees EOF) and poisons the number so every
  /// later op on it fails with ECONNRESET until the owner Close()s it.
  void PoisonLocked(int fd);

  Config config_;
  util::Xoshiro256 rng_;
  Syscalls& base_;
  bool passthrough_ = false;
  std::uint64_t calls_ = 0;  // faultable-call ordinal (read/write/conn/acc)
  std::unordered_set<int> open_fds_;  // opened through this shim
  std::unordered_set<int> poisoned_;  // reset injected; real fd closed
  std::unordered_set<int> stalled_;   // connect stalled; never ready
  std::vector<SyscallFaultRecord> faults_;
};

}  // namespace rfdump::net
