#pragma once
// In-process lossy-link emulator (DESIGN.md §12).
//
// The transport counterpart of emu::FrontEnd: where the front end replays a
// sample stream the way a cheap USB capture actually delivers it, FaultyLink
// replays a *frame* stream the way a hostile network actually delivers it —
// seeded drop / duplicate / reorder / corrupt / delay injection plus
// scheduled partitions — and records every injected fault in a ground-truth
// log so the chaos tests can score the session/aggregator layer exactly:
// which frames the receiver had an honest chance to see, which losses the
// sensor must eventually report as gaps, and which corruptions the CRC must
// have rejected.
//
// Time is integer ticks (the fleet's virtual clock; net/fleet.hpp maps ticks
// to samples). All randomness comes from one seeded Xoshiro256, so a fault
// schedule is reproducible bit-for-bit from (config, seed, send sequence).

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/util/rng.hpp"

namespace rfdump::net {

enum class LinkFaultKind {
  kDrop,       // frame silently discarded
  kDuplicate,  // frame delivered twice
  kReorder,    // frame held back so later sends overtake it
  kCorrupt,    // random bytes flipped (the CRC must catch this)
  kPartition,  // frame sent or due during a partition window: discarded
};

[[nodiscard]] const char* LinkFaultKindName(LinkFaultKind kind);

/// Ground-truth record for one injected fault. `send_index` is the 0-based
/// ordinal of the Send() call the fault applied to — the caller's handle for
/// mapping faults back to frames (the link is payload-agnostic).
struct LinkFaultRecord {
  LinkFaultKind kind = LinkFaultKind::kDrop;
  std::int64_t tick = 0;        // when the fault was injected
  std::uint64_t send_index = 0;
  std::size_t bytes = 0;        // size of the affected frame
};

/// Unidirectional frame conduit with fault injection. Send() enqueues at the
/// current tick; Advance() moves the clock and returns everything due, in
/// delivery order.
class FaultyLink {
 public:
  struct Config {
    double drop_rate = 0.0;       // per-frame P(silently discarded)
    double duplicate_rate = 0.0;  // per-frame P(delivered twice)
    double corrupt_rate = 0.0;    // per-frame P(bytes flipped in transit)
    double reorder_rate = 0.0;    // per-frame P(held back extra ticks)
    int corrupt_max_bytes = 4;    // byte flips per corruption, uniform [1, N]
    int reorder_max_ticks = 8;    // extra hold, uniform [1, N]
    int base_delay_ticks = 0;     // propagation delay applied to every frame
    int jitter_ticks = 0;         // extra delay, uniform [0, N]
    /// Half-open [begin, end) tick windows during which the link is down:
    /// frames sent or coming due inside a window are discarded (and logged
    /// as kPartition). Windows must be disjoint and ascending.
    struct Window {
      std::int64_t begin = 0;
      std::int64_t end = 0;
    };
    std::vector<Window> partitions;
  };

  explicit FaultyLink(Config config, std::uint64_t seed = 1);

  /// Enqueues one frame at the current tick, applying the fault schedule.
  void Send(std::vector<std::uint8_t> frame);

  /// Advances the link clock to `tick` (monotonic; lagging calls are
  /// clamped) and returns every frame due by then, in delivery order.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> Advance(
      std::int64_t tick);

  /// Stops injecting *new* faults (drain mode for tests that must converge
  /// deterministically); already-scheduled deliveries are unaffected, and
  /// partitions still apply.
  void set_lossless(bool lossless) { lossless_ = lossless; }

  /// True while `tick` falls inside a configured partition window.
  [[nodiscard]] bool Partitioned(std::int64_t tick) const;

  /// Ground-truth fault log, in injection order.
  const std::vector<LinkFaultRecord>& faults() const { return faults_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return sends_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }

  /// One JSON line per fault record — the artifact the chaos suite dumps on
  /// failure so a red CI run carries its own repro data.
  [[nodiscard]] std::string FaultLogJson() const;

  const Config& config() const { return config_; }

 private:
  struct InFlight {
    std::int64_t due = 0;
    std::uint64_t order = 0;  // tie-break: preserves send order at equal due
    std::uint64_t send_index = 0;
    std::vector<std::uint8_t> frame;
  };

  Config config_;
  util::Xoshiro256 rng_;
  std::vector<InFlight> queue_;  // kept sorted by (due, order)
  std::int64_t now_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t order_ = 0;
  bool lossless_ = false;
  std::vector<LinkFaultRecord> faults_;
};

}  // namespace rfdump::net
