#pragma once
// Fleet harness: N sensors -> one aggregator over emulated faulty links
// (DESIGN.md §12; the multi-sensor architecture from ROADMAP item 2).
//
// Fleet owns the whole in-process topology: per sensor a SensorSession and
// a duplex pair of FaultyLinks (uplink carries data/heartbeats, downlink
// carries acks), all feeding one Aggregator. One Tick() advances the
// virtual clock everywhere in a fixed pump order, so a run is reproducible
// bit-for-bit from (config, seeds):
//
//   session.Tick -> uplink.Send/Advance -> aggregator.HandleBytes
//   -> aggregator.Tick -> downlink.Send/Advance -> session.HandleBytes
//
// The sensor's local sample clock is `tick * samples_per_tick +
// clock_offset_samples` — the same skew an emu::FrontEnd applies to its
// segment timestamps, so a real monitor's event positions and the fleet's
// heartbeat clock samples agree.
//
// MonitorSensorSink adapts a StreamingMonitor to a session: it implements
// core::ResultSink, buffering decoded events per block and shipping them as
// EventBatchMsg frames. The sink contract delivers health *first* for each
// block, so a health report is the signal that the previous block's events
// are complete; Flush() ships the tail after the monitor's own Flush().

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rfdump/core/result_sink.hpp"
#include "rfdump/net/aggregator.hpp"
#include "rfdump/net/faulty_link.hpp"
#include "rfdump/net/messages.hpp"
#include "rfdump/net/session.hpp"
#include "rfdump/net/transport.hpp"

namespace rfdump::net {

/// Point-in-time snapshot of everything the fleet knows about itself:
/// both sides of every sensor's link (session ledgers, aggregator status,
/// parse stats) plus the fused-view totals. Rendered by the CLI's
/// `--fleet-status[=json]` (DESIGN.md §13).
struct FleetStatus {
  struct SensorRow {
    std::uint16_t id = 0;
    // Sensor side (session).
    SensorSession::State session_state = SensorSession::State::kConnecting;
    std::uint32_t epoch = 0;
    std::uint32_t acked_seq = 0;
    std::size_t unacked = 0;
    SensorSession::Stats session;
    std::vector<SeqRange> lost_ranges;
    // Central side (aggregator); `known` is false until the aggregator has
    // heard a first valid frame, in which case `agg`/`parse` are defaulted.
    bool known = false;
    Aggregator::SensorStatus agg;
    ParseStats parse;
  };

  std::int64_t tick = 0;
  std::size_t live_sensors = 0;
  std::size_t fused_events = 0;
  std::uint64_t merges = 0;
  std::uint64_t fused_pruned = 0;
  std::vector<SensorRow> sensors;

  /// Machine-readable rendering (schema-checked in tests/net_test.cpp).
  [[nodiscard]] std::string ToJson() const;
  /// One-screen operator rendering.
  [[nodiscard]] std::string ToText() const;
};

/// core::ResultSink -> SensorSession bridge. Not thread-safe itself, but the
/// monitor serialises sink calls and the session serialises publishes, so
/// monitor-thread emission concurrent with fleet-thread Tick is safe.
class MonitorSensorSink final : public core::ResultSink {
 public:
  explicit MonitorSensorSink(SensorSession& session) : session_(session) {}

  /// One generic override covers every registered protocol: the pipeline's
  /// event view already carries wifi/bt/zigbee (via their shims) plus any
  /// registry-era protocol, so the typed sink callbacks are not needed here.
  void OnEvent(const core::ProtocolEvent& event) override;
  void OnHealth(const core::HealthReport& report) override;

  /// Ships any buffered tail events. Call after StreamingMonitor::Flush().
  void Flush();

  /// Events handed to the session so far (published, not necessarily acked).
  [[nodiscard]] std::uint64_t events_published() const {
    return events_published_;
  }

 private:
  void Buffer(EventRecord record);

  SensorSession& session_;
  std::vector<EventRecord> pending_;
  std::int64_t block_start_ = 0;  // sensor-local position of pending_'s block
  std::uint64_t events_published_ = 0;
};

/// Owns sessions, links, and the aggregator; advances them in lockstep.
class Fleet {
 public:
  struct SensorSpec {
    std::uint16_t id = 0;
    /// Sensor clock skew: local = global + offset (matches
    /// emu::FrontEnd::Config::clock_offset_samples).
    std::int64_t clock_offset_samples = 0;
    SensorSession::Config session;  // sensor_id is overwritten with `id`
    FaultyLink::Config uplink;
    FaultyLink::Config downlink;
    std::uint64_t seed = 1;  // session jitter + both link fault schedules
  };

  struct Config {
    /// Samples of ether time per fleet tick (1 ms at 8 Msps by default).
    std::int64_t samples_per_tick = 8000;
    Aggregator::Config aggregator;  // samples_per_tick is overwritten
    std::vector<SensorSpec> sensors;
  };

  explicit Fleet(Config config);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::int64_t tick() const { return now_; }
  /// Sensor i's local sample clock at the current tick.
  [[nodiscard]] std::int64_t LocalTime(std::size_t i) const;

  SensorSession& session(std::size_t i) { return nodes_[i]->session; }
  FaultyLink& uplink(std::size_t i) { return nodes_[i]->uplink; }
  FaultyLink& downlink(std::size_t i) { return nodes_[i]->downlink; }
  MonitorSensorSink& sink(std::size_t i) { return nodes_[i]->sink; }
  /// The Transport seam the pump drives (sensor side of sensor i's links);
  /// the TCP path (net/endpoint.hpp) plugs the same interface.
  Transport& transport(std::size_t i) { return nodes_[i]->sensor_side; }
  Aggregator& aggregator() { return aggregator_; }
  const Aggregator& aggregator() const { return aggregator_; }
  [[nodiscard]] std::uint16_t sensor_id(std::size_t i) const {
    return nodes_[i]->spec.id;
  }

  /// Publishes a synthetic event batch on sensor i (chaos tests inject here;
  /// real monitors publish through sink(i) instead). `block_start` and event
  /// positions are in the sensor's *local* timeline.
  std::uint32_t Publish(std::size_t i, std::int64_t block_start,
                        std::vector<EventRecord> events);

  /// One lockstep tick of the whole topology.
  void Tick();
  /// Convenience: `ticks` consecutive Tick() calls.
  void Run(int ticks);

  /// Drain mode: stop injecting new link faults fleet-wide so retransmits
  /// converge (scheduled partitions still apply).
  void SetLossless(bool lossless);

  /// Snapshots per-sensor liveness, trust, seq/ack/gap ledgers, ParseStats,
  /// clock offsets and link health — refreshable mid-run.
  [[nodiscard]] FleetStatus StatusReport() const;

 private:
  // SensorSession owns a mutex, so nodes live behind stable pointers. The
  // FaultyLinks stay owned here (chaos tests keep their uplink()/downlink()
  // handles and fault logs); the two LinkTransports are the per-side views
  // the pump actually drives, the same Transport seam the TCP path plugs
  // into (net/endpoint.hpp).
  struct Node {
    explicit Node(SensorSpec s)
        : spec(s),
          session(s.session, s.seed),
          uplink(s.uplink, s.seed * 2 + 1),
          downlink(s.downlink, s.seed * 2 + 2),
          sink(session),
          sensor_side(uplink, downlink),
          central_side(downlink, uplink) {}

    SensorSpec spec;
    SensorSession session;
    FaultyLink uplink;
    FaultyLink downlink;
    MonitorSensorSink sink;
    LinkTransport sensor_side;   // tx = uplink, rx = downlink
    LinkTransport central_side;  // tx = downlink, rx = uplink
  };

  Config config_;
  Aggregator aggregator_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::int64_t now_ = 0;
};

}  // namespace rfdump::net
