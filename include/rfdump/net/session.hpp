#pragma once
// Sensor-side reliable session over a lossy link (DESIGN.md §12).
//
// SensorSession turns "fire a frame into a FaultyLink" into a connection
// with delivery guarantees the aggregator can reason about:
//
//   * data frames (event batches, health, gap reports) get per-sensor
//     monotonic sequence numbers and sit in a bounded retransmit ring until
//     the aggregator's cumulative ack covers them;
//   * unacked frames are resent on a per-frame timeout with exponential
//     backoff (capped), so a dropped or corrupted frame is recovered rather
//     than lost;
//   * when the ring overflows (a long partition, a slow link), the oldest
//     unacked frames are discarded and their sequence numbers recorded in a
//     *cumulative* GapReport — the transport-layer analogue of the PR 1
//     sample-gap invariant: loss is always explicit, never silent;
//   * heartbeats carry the sensor's local sample clock for the aggregator's
//     offset estimator and keep the session observable when idle;
//   * liveness is watched from this side too: no ack within the timeout
//     puts the session into exponential-backoff reconnect (with seeded
//     jitter so a fleet doesn't thundering-herd), bumping the session epoch
//     so stale acks from before the outage are ignored.
//
// Threading: Publish* may be called from a StreamingMonitor's analyzer
// thread while the fleet thread runs Tick/HandleBytes/TakeOutbound — all
// public methods are serialized on an internal mutex.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "rfdump/net/messages.hpp"
#include "rfdump/net/wire.hpp"
#include "rfdump/obs/metrics.hpp"
#include "rfdump/obs/trace.hpp"
#include "rfdump/util/rng.hpp"

namespace rfdump::net {

class SensorSession {
 public:
  struct Config {
    std::uint16_t sensor_id = 0;
    int heartbeat_interval_ticks = 2;
    int rto_ticks = 4;          // initial per-frame retransmit timeout
    int rto_max_ticks = 32;     // cap for the per-frame exponential backoff
    int ack_timeout_ticks = 16; // no ack for this long => reconnect
    int backoff_base_ticks = 2; // reconnect backoff: base * 2^attempt ...
    int backoff_max_ticks = 64; // ... capped here, plus jitter
    double backoff_jitter = 0.5;  // uniform extra delay, fraction of delay
    std::size_t retransmit_ring = 64;  // max unacked data frames held
    std::size_t max_gap_ranges = 64;   // cumulative gap list cap (merged)
    // Observability (DESIGN.md §13). Null tracer = obs::Tracer::Default().
    obs::Tracer* tracer = nullptr;
    /// Ship a MetricsMsg snapshot every Nth heartbeat (0 = federation off,
    /// the default — callers running a fleet opt in).
    int metrics_every_n_heartbeats = 0;
    /// Every Nth snapshot carries all entries, not just changed ones, so a
    /// dropped delta heals (kMetrics frames are unsequenced and droppable).
    int metrics_full_every = 8;
    /// Per-snapshot entry cap; entries over the cap stay unshipped and
    /// self-heal (still "changed" next snapshot).
    std::size_t max_metrics_entries = 128;
    /// Extra registry federated alongside the built-in session stats
    /// (typically a per-sensor registry; null = session stats only).
    obs::Registry* metrics_registry = nullptr;
  };

  enum class State {
    kConnecting,  // hello sent, waiting for the first ack of this epoch
    kConnected,
    kBackoff,     // liveness lost; waiting out the reconnect delay
  };

  struct Stats {
    std::uint64_t frames_sent = 0;         // unique frames handed to the link
    std::uint64_t retransmits = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t reconnects = 0;          // transitions into kBackoff
    std::uint64_t ring_overflow_drops = 0; // data frames given up on
    std::uint64_t stale_acks = 0;          // acks for an older epoch
    std::uint64_t metrics_snapshots = 0;   // MetricsMsg frames shipped
    /// Smoothed publish->ack round trip in ticks, Karn-sampled (only frames
    /// never retransmitted contribute). Negative until the first sample.
    double rtt_ticks = -1.0;
  };

  explicit SensorSession(Config config, std::uint64_t seed = 1);

  /// Queues a sequenced data frame. Returns the assigned sequence number.
  std::uint32_t PublishEvents(const EventBatchMsg& batch);
  std::uint32_t PublishHealth(const core::HealthReport& report);

  /// Feeds bytes arriving on the downlink (acks). Tolerates corruption.
  void HandleBytes(std::span<const std::uint8_t> bytes);

  /// The transport under this session died (EOF, reset, connect failure).
  /// Enters the epoch-bumping backoff immediately instead of waiting out
  /// the ack timeout — the TCP endpoint's hard disconnect signal. No-op if
  /// already backing off.
  void OnTransportDown();

  /// Advances the session clock: heartbeats, retransmit timeouts, liveness
  /// check, reconnect state machine. `local_time` is the sensor's sample
  /// clock (shipped in hellos/heartbeats for the offset estimator).
  void Tick(std::int64_t tick, std::int64_t local_time);

  /// Drains the frames queued since the last call (encode order preserved).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> TakeOutbound();

  [[nodiscard]] State state() const;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::uint32_t epoch() const;
  /// Highest sequence number covered by a cumulative ack.
  [[nodiscard]] std::uint32_t acked_seq() const;
  /// Data frames currently waiting for an ack.
  [[nodiscard]] std::size_t unacked() const;
  /// Cumulative merged list of sequence ranges this session gave up on.
  [[nodiscard]] std::vector<SeqRange> lost_ranges() const;

  /// The tracer session spans record into (config override or the default).
  [[nodiscard]] obs::Tracer& tracer() const {
    return config_.tracer != nullptr ? *config_.tracer
                                     : obs::Tracer::Default();
  }

 private:
  struct PendingFrame {
    std::uint32_t seq = 0;
    FrameType type = FrameType::kEventBatch;
    std::vector<std::uint8_t> wire;  // encoded frame, resent verbatim
    std::int64_t first_sent = 0;
    std::int64_t last_sent = 0;
    int rto = 0;
    bool retransmitted = false;  // Karn: retransmitted frames never sample RTT
  };

  std::uint32_t EnqueueDataLocked(FrameType type,
                                  std::span<const std::uint8_t> payload);
  void SendControlLocked(FrameType type,
                         std::span<const std::uint8_t> payload);
  void AddLostLocked(std::uint32_t seq);
  void PublishGapReportLocked();
  void BeginBackoffLocked(std::int64_t tick);
  void SendMetricsLocked();

  mutable std::mutex mu_;
  Config config_;
  util::Xoshiro256 rng_;
  FrameParser parser_;
  State state_ = State::kConnecting;
  std::uint32_t epoch_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint32_t acked_ = 0;
  std::deque<PendingFrame> ring_;
  std::vector<std::vector<std::uint8_t>> outbound_;
  std::vector<SeqRange> lost_;  // merged, ascending
  bool gap_dirty_ = false;      // lost_ changed since the last GapReport
  bool hello_sent_ = false;
  std::int64_t now_ = 0;
  std::int64_t local_time_ = 0;
  std::int64_t last_ack_tick_ = 0;
  std::int64_t last_heartbeat_tick_ = -1;
  std::int64_t reconnect_at_ = 0;
  int backoff_attempts_ = 0;
  Stats stats_;
  // Metrics federation (DESIGN.md §13): last values shipped per entry name,
  // for delta selection against the next snapshot.
  std::uint32_t metrics_snapshot_id_ = 0;
  std::uint64_t heartbeats_at_last_metrics_ = 0;
  std::map<std::string, std::pair<std::uint8_t, double>> metrics_shipped_;
};

[[nodiscard]] const char* SessionStateName(SensorSession::State state);

}  // namespace rfdump::net
