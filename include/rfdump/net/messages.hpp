#pragma once
// Message payloads carried inside net frames (DESIGN.md §12).
//
// The fleet ships three things from sensor to aggregator: decoded
// transmissions (compact EventRecords, not whole DecodedFrames — the
// aggregator fuses and dedups, it does not re-demodulate), per-block
// health, and liveness/clock samples. The aggregator ships back cumulative
// acks. All timestamps in sensor->aggregator messages are in the *sensor's
// local sample timeline* (its front-end clock, which is offset from true
// ether time); the aggregator aligns them (net/aggregator.hpp).
//
// Every message has an Encode() producing the frame payload bytes and a
// Decode() returning false on truncated/garbage input (the frame CRC
// catches corruption; Decode guards against a hostile or version-skewed
// peer). Encode/decode round-trip identity is asserted per message type in
// tests/net_test.cpp.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/net/wire.hpp"
#include "rfdump/obs/context.hpp"

namespace rfdump::net {

/// One decoded transmission, compacted for the wire. `payload_digest` is a
/// FNV-1a hash of the decoded payload bytes so the aggregator can
/// distinguish "same packet heard twice" from "different packet, same
/// position" without shipping payloads.
struct EventRecord {
  core::Protocol protocol = core::Protocol::kUnknown;
  std::int16_t channel = -1;  // Bluetooth visible channel index, -1 otherwise
  std::int64_t start_sample = 0;  // sensor-local timeline
  std::int64_t end_sample = 0;
  std::uint32_t payload_bytes = 0;
  bool crc_ok = false;
  std::uint64_t payload_digest = 0;

  bool operator==(const EventRecord&) const = default;
};

[[nodiscard]] std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes);

/// Builds EventRecords from a monitor's decoded outputs. The generic
/// overload covers every registered protocol (the sensor sink uses it);
/// the typed ones remain for hand-built legacy reports.
[[nodiscard]] EventRecord ToEventRecord(const core::ProtocolEvent& ev);
[[nodiscard]] EventRecord ToEventRecord(const phy80211::DecodedFrame& f);
[[nodiscard]] EventRecord ToEventRecord(const phybt::DecodedBtPacket& p);
[[nodiscard]] EventRecord ToEventRecord(const phyzigbee::DecodedZbFrame& z);

/// Session (re)establishment. `epoch` increments on every sensor-side
/// reconnect so the aggregator can tell a fresh session from a delayed
/// duplicate of an old one.
struct HelloMsg {
  std::uint32_t epoch = 0;
  std::int64_t local_time = 0;  // sensor sample clock at send
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<HelloMsg> Decode(std::span<const std::uint8_t> p);
};

/// Liveness + clock sample. The aggregator's offset estimator min-filters
/// (arrival_time - local_time) over these (see net/aggregator.hpp).
struct HeartbeatMsg {
  std::int64_t local_time = 0;
  std::uint64_t frames_sent = 0;  // session lifetime total, for loss stats
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<HeartbeatMsg> Decode(std::span<const std::uint8_t> p);
};

/// Aggregator -> sensor: everything up to and including `cum_seq` has been
/// delivered (or declared lost by a GapReport); the sensor may drop those
/// frames from its retransmit ring.
struct AckMsg {
  std::uint32_t cum_seq = 0;
  std::uint32_t epoch = 0;  // echo of the sensor epoch being acked
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<AckMsg> Decode(std::span<const std::uint8_t> p);
};

/// A batch of decoded transmissions (one monitor block's worth). `ctx` is
/// the sensor-side span that published the batch (DESIGN.md §13); all-zero
/// when tracing is disabled, in which case the aggregator roots locally.
struct EventBatchMsg {
  std::int64_t block_start = 0;  // sensor-local block position
  obs::TraceContext ctx;
  std::vector<EventRecord> events;
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<EventBatchMsg> Decode(std::span<const std::uint8_t> p);
};

/// One core::HealthReport, shipped verbatim (all fields).
struct HealthMsg {
  core::HealthReport report;
  obs::TraceContext ctx;
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<HealthMsg> Decode(std::span<const std::uint8_t> p);
};

/// Inclusive range of sequence numbers the sensor gave up on (retransmit
/// ring overflow). GapReports are *cumulative*: each one carries the full
/// merged list for the session, so losing all but the last is harmless.
struct SeqRange {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  bool operator==(const SeqRange&) const = default;
};

struct GapReportMsg {
  std::vector<SeqRange> lost;
  obs::TraceContext ctx;
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<GapReportMsg> Decode(std::span<const std::uint8_t> p);
};

/// One scalar metric in a federation snapshot (DESIGN.md §13). Values are
/// ABSOLUTE (never increments): the aggregator applies last-write-wins per
/// name, so dropped, duplicated or reordered snapshots can never
/// double-count — at worst the fused view is briefly stale.
struct MetricEntry {
  std::string name;  // registered metric name, <= kMaxMetricNameBytes
  std::uint8_t kind = 0;  // obs::MetricKind on the wire: 0 counter, 1 gauge
  double value = 0.0;
  bool operator==(const MetricEntry&) const = default;
};

inline constexpr std::size_t kMaxMetricNameBytes = 256;

/// Periodic sensor -> aggregator metrics snapshot, shipped as an
/// unsequenced kMetrics control frame on the heartbeat cadence. Delta
/// selection (only changed entries) keeps it small; `full` marks snapshots
/// carrying every entry (sent periodically so a lost delta heals).
/// `snapshot_id` increases monotonically per session so the receiver can
/// discard stale or duplicated snapshots.
struct MetricsMsg {
  std::uint32_t snapshot_id = 0;
  std::uint8_t full = 0;
  std::vector<MetricEntry> entries;
  [[nodiscard]] std::vector<std::uint8_t> Encode() const;
  static std::optional<MetricsMsg> Decode(std::span<const std::uint8_t> p);
};

}  // namespace rfdump::net
