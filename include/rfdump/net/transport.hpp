#pragma once
// Transport abstraction under the frame layer (DESIGN.md §14).
//
// Everything above this interface — SensorSession, Aggregator, Fleet — deals
// in encoded frames and byte streams; everything below it deals in how those
// bytes actually move. Two implementations exist:
//
//   * LinkTransport (this header): the in-memory FaultyLink pair the fleet
//     harness has always pumped, refactored behind the interface so the
//     chaos sweep keeps its exact semantics (and its ground-truth logs);
//   * TcpTransport (net/tcp.hpp): real nonblocking sockets over loopback or
//     a wire, with FaultySyscalls underneath for chaos testing at the
//     syscall boundary.
//
// The contract is deliberately narrow and byte-stream shaped, because that
// is all TCP gives you:
//
//   * Send() takes one *encoded frame* (the natural unit the session and
//     aggregator produce) and may refuse it — `false` means the transport's
//     bounded send buffer is at its high-water mark. Callers do not retry:
//     a refused data frame sits in the session's retransmit ring and comes
//     back on its RTO; a refused control frame is regenerated on the next
//     heartbeat/ack cadence. Backpressure therefore degrades a slow peer to
//     the ring's bounded memory instead of growing a queue without limit.
//   * Poll() advances the transport one virtual tick and *appends* whatever
//     bytes arrived to `received` — unframed, possibly cut mid-header; the
//     caller's FrameParser owns reassembly and resync.
//   * state() reports the connection lifecycle. kClosed is terminal: a
//     transport never reconnects itself. The owner (SensorEndpoint) maps
//     kClosed to SensorSession::OnTransportDown(), which routes reconnect
//     through the session's existing epoch-bumping backoff.

#include <cstdint>
#include <span>
#include <vector>

#include "rfdump/net/faulty_link.hpp"

namespace rfdump::net {

class Transport {
 public:
  enum class State {
    kConnecting,  // handshake in flight (TCP: nonblocking connect pending)
    kConnected,
    kClosed,      // terminal: EOF, reset, or connect failure/timeout
  };

  /// Counters every implementation keeps; the TCP transport fills the
  /// syscall-shaped ones, the in-memory link leaves them zero.
  struct Stats {
    std::uint64_t frames_accepted = 0;   // Send() == true
    std::uint64_t send_rejects = 0;      // Send() == false (backpressure)
    std::uint64_t bytes_sent = 0;        // handed to the wire
    std::uint64_t bytes_received = 0;
    std::uint64_t partial_writes = 0;    // write consumed < requested
    std::uint64_t partial_reads = 0;     // read returned < requested
    std::uint64_t eintr_retries = 0;
    std::uint64_t eagain_yields = 0;     // would-block, resumed next Poll
    std::uint64_t resets = 0;            // ECONNRESET / EPIPE
    std::uint64_t connect_timeouts = 0;
    std::size_t send_buffer_peak = 0;    // high-water mark actually reached
  };

  virtual ~Transport() = default;

  /// Queues one encoded frame. Returns false when the bounded send buffer
  /// would overflow (backpressure) or the transport is closed; the frame is
  /// NOT taken in that case.
  virtual bool Send(std::span<const std::uint8_t> frame) = 0;

  /// Advances to `tick` and appends received bytes (an arbitrary slice of
  /// the peer's byte stream) to `received`.
  virtual void Poll(std::int64_t tick, std::vector<std::uint8_t>& received) = 0;

  [[nodiscard]] virtual State state() const = 0;
  virtual void Close() = 0;
  [[nodiscard]] virtual const Stats& stats() const = 0;
};

[[nodiscard]] const char* TransportStateName(Transport::State state);

/// One side of an in-memory duplex channel built from two FaultyLinks. The
/// links are owned elsewhere (Fleet's Node keeps them, so chaos tests keep
/// their uplink()/downlink() handles and fault logs); each side sends into
/// its tx link and drains its rx link. Always connected; Send never applies
/// backpressure — the FaultyLink *is* the fault model here, and the chaos
/// sweep's ground truth depends on every offered frame entering the link.
class LinkTransport final : public Transport {
 public:
  LinkTransport(FaultyLink& tx, FaultyLink& rx) : tx_(tx), rx_(rx) {}

  bool Send(std::span<const std::uint8_t> frame) override;
  void Poll(std::int64_t tick, std::vector<std::uint8_t>& received) override;
  [[nodiscard]] State state() const override {
    return closed_ ? State::kClosed : State::kConnected;
  }
  void Close() override { closed_ = true; }
  [[nodiscard]] const Stats& stats() const override { return stats_; }

 private:
  FaultyLink& tx_;
  FaultyLink& rx_;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace rfdump::net
