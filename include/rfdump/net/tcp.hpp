#pragma once
// Nonblocking TCP transport carrying the frame layer over real sockets
// (DESIGN.md §14; ROADMAP item 2's "real socket transport").
//
// The robustness contract, not mere connectivity:
//
//   * every syscall goes through net/faulty_syscalls.hpp, so the chaos
//     suite can inject short reads, EINTR/EAGAIN, mid-frame resets, fd
//     exhaustion and connect stalls at the exact boundary a deployment
//     hits them;
//   * writes are resumable: a partial write leaves the tail in a bounded
//     send buffer and the next Poll picks up mid-byte — a frame may cross
//     any number of write() calls (including a cut mid-header);
//   * the send buffer has a hard cap (Config::send_buffer_limit); Send()
//     refuses frames past it, surfacing backpressure to the session's
//     retransmit ring instead of growing without bound behind a slow peer;
//   * nonblocking connect with a tick-based timeout, chosen shorter than
//     the session's ack timeout so a stalled connect feeds the session's
//     epoch-bumping backoff rather than racing it;
//   * EOF and ECONNRESET/EPIPE both land in State::kClosed — the owner
//     maps that to a clean session disconnect; the transport itself never
//     retries or reconnects.
//
// Single-threaded by design: one owner calls Send/Poll; concurrency lives
// above (SensorSession's mutex) and below (the kernel).

#include <cstdint>
#include <memory>
#include <string>

#include "rfdump/net/faulty_syscalls.hpp"
#include "rfdump/net/transport.hpp"

namespace rfdump::net {

class TcpTransport final : public Transport {
 public:
  struct Config {
    /// Hard cap on buffered unsent bytes; Send() past it returns false.
    std::size_t send_buffer_limit = 256 * 1024;
    /// Bytes asked of each read(2).
    std::size_t read_chunk = 16 * 1024;
    /// Per-Poll ingest cap, so one firehose peer cannot starve the tick.
    std::size_t max_read_per_poll = 256 * 1024;
    /// Nonblocking connect deadline in ticks. Keep below the session's
    /// ack_timeout_ticks: a dead dial should recycle through backoff
    /// before the session gives up on the epoch.
    int connect_timeout_ticks = 8;
    /// EINTR retries per syscall before deferring to the next Poll.
    int max_eintr_retries = 4;
  };

  /// Starts a nonblocking connect to host:port ("127.0.0.1", 9000).
  /// Returns nullptr only if no socket could be created; connect errors
  /// after that surface through state() == kClosed.
  static std::unique_ptr<TcpTransport> Dial(const std::string& host,
                                            std::uint16_t port, Config config,
                                            Syscalls& sys, std::int64_t tick);

  /// Adopts an fd (typically from TcpListener::Accept), already connected.
  TcpTransport(int fd, Config config, Syscalls& sys, std::int64_t tick,
               State initial);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  bool Send(std::span<const std::uint8_t> frame) override;
  void Poll(std::int64_t tick, std::vector<std::uint8_t>& received) override;
  [[nodiscard]] State state() const override { return state_; }
  void Close() override;
  [[nodiscard]] const Stats& stats() const override { return stats_; }

  [[nodiscard]] std::size_t send_buffered() const { return send_buf_.size(); }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  void PollConnecting(std::int64_t tick);
  void FlushSendBuffer();
  void ReadAvailable(std::vector<std::uint8_t>& received);
  /// Terminal teardown; `reset` counts it as a reset, EOF stays clean.
  void Fail(bool reset);

  Config config_;
  Syscalls& sys_;
  int fd_ = -1;
  State state_ = State::kConnecting;
  std::int64_t dial_tick_ = 0;
  std::vector<std::uint8_t> send_buf_;  // unsent tail, resumed each Poll
  Stats stats_;
};

/// Accepting side. Bind/listen use real syscalls (setup failures are loud
/// and immediate); Accept goes through the Syscalls shim so fd exhaustion
/// and transient accept failures are injectable.
class TcpListener {
 public:
  explicit TcpListener(Syscalls& sys = Syscalls::Real()) : sys_(sys) {}
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port. Port 0 picks an ephemeral port (read
  /// it back via port()). Returns false with the OS error in errno.
  bool Listen(const std::string& host, std::uint16_t port, int backlog = 16);

  /// Accepts one pending connection as a connected transport, or nullptr
  /// when none is ready (or the accept was fault-injected away).
  std::unique_ptr<TcpTransport> Accept(TcpTransport::Config config,
                                       std::int64_t tick);

  void Close();
  [[nodiscard]] bool listening() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }

 private:
  Syscalls& sys_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace rfdump::net
