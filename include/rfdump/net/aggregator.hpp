#pragma once
// Central aggregator: fuses N sensor streams into one ether-wide view
// (DESIGN.md §12; the Electrosense+ direction from ROADMAP item 2).
//
// Per sensor, the aggregator maintains:
//
//   * a FrameParser (CRC rejection; corrupt frames are counted and dropped,
//     never decoded — the sensor's retransmit timer recovers them);
//   * cumulative-ack reassembly: in-order delivery through a bounded
//     reorder buffer, duplicate discard by sequence number, and explicit
//     gap application — a sequence range the sensor declared lost is
//     skipped *and recorded*, mirroring the PR 1 rule that the monitor
//     never silently decodes across missing input;
//   * a clock-offset estimator: sensors timestamp events in their own
//     sample clock, hellos/heartbeats carry that clock, and the estimator
//     min-filters (arrival_time - sensor_time) so local timelines map onto
//     the aggregator's global one (min-filtering converges to true offset
//     plus minimum link delay — constant across sensors on symmetric
//     links, so *relative* alignment is exact);
//   * liveness + trust: a sensor that goes quiet past the timeout is marked
//     degraded and excluded from fusion totals without stalling anyone
//     else; gaps and reconnect churn drain a trust score, clean batches
//     slowly restore it, and a sensor under the trust floor keeps streaming
//     but its events are held out of the fused view.
//
// Fusion dedups cross-sensor decodes by the same clustering rule the
// differential oracle uses (testing/differential.hpp): events of one
// (protocol, channel) whose aligned starts land within a slack window are
// one over-the-air transmission heard by several sensors. The fused view
// keeps one FusedEvent per cluster with a witness mask.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rfdump/net/messages.hpp"
#include "rfdump/net/wire.hpp"
#include "rfdump/obs/metrics.hpp"
#include "rfdump/obs/trace.hpp"

namespace rfdump::net {

/// One over-the-air transmission in the fused view (global timeline).
struct FusedEvent {
  core::Protocol protocol = core::Protocol::kUnknown;
  std::int16_t channel = -1;
  std::int64_t start = 0;  // aligned, global sample timeline
  std::int64_t end = 0;
  std::uint32_t payload_bytes = 0;
  bool crc_ok = false;
  std::uint64_t payload_digest = 0;
  std::uint32_t sensor_mask = 0;  // bit per sensor_id (ids < 32)
  int witnesses = 0;
};

class Aggregator {
 public:
  struct Config {
    /// Maps the fleet's tick clock to the global sample timeline (1 ms of
    /// 8 Msps ether per tick by default).
    std::int64_t samples_per_tick = 8000;
    /// No valid frame from a sensor for this long => degraded.
    int liveness_timeout_ticks = 24;
    /// Cross-sensor cluster window, generalizing the differential oracle's
    /// 16-sample slack: wider because independent front ends disagree by a
    /// few samples *and* clock alignment carries bounded error.
    std::int64_t dedup_slack_samples = 64;
    /// Out-of-order frames buffered per sensor while waiting for a
    /// retransmit to fill the sequence hole.
    std::size_t reorder_buffer = 256;
    /// Fused-view history cap: once exceeded, the oldest quarter is pruned
    /// (fused() keeps only the recent tail; fused_pruned() counts the rest)
    /// so a long-running aggregator stays bounded. 0 = unbounded.
    std::size_t max_fused_history = 1u << 20;
    /// Trust: [0, 1]; events from sensors below the floor are tracked but
    /// not fused.
    double trust_floor = 0.2;
    double trust_gap_penalty = 0.10;        // per applied gap range
    double trust_reconnect_penalty = 0.05;  // per epoch bump
    double trust_recovery = 0.01;           // per clean in-order data frame
    /// Tracer aggregator-side spans record into (null = the default tracer).
    obs::Tracer* tracer = nullptr;
  };

  enum class SensorState { kLive, kDegraded };

  /// Everything the aggregator knows about one sensor.
  struct SensorStatus {
    SensorState state = SensorState::kLive;
    std::uint32_t epoch = 0;
    std::uint32_t cum_seq = 0;        // delivered-or-declared-lost watermark
    std::int64_t last_heard_tick = 0;
    std::int64_t clock_offset = 0;    // current min-filter estimate
    bool offset_known = false;
    double trust = 1.0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t corrupt_dropped = 0;     // parser CRC rejections
    std::uint64_t reorder_overflow = 0;    // buffered frames evicted
    std::uint64_t events_received = 0;
    std::uint64_t events_held_untrusted = 0;
    std::uint64_t degraded_transitions = 0;
    /// Clock-offset drift: times the min-filter tightened the estimate.
    std::uint64_t offset_updates = 0;
    // Metrics federation (DESIGN.md §13).
    std::uint32_t metrics_snapshot_id = 0;   // highest snapshot applied
    std::uint64_t metrics_snapshots_applied = 0;
    std::uint64_t metrics_stale_dropped = 0; // out-of-order/duplicate drops
    /// Sequence ranges skipped without delivery (the sensor declared them
    /// lost and nothing ever arrived) — the fleet's explicit loss record.
    std::vector<SeqRange> lost_applied;
    std::vector<core::HealthReport> health;
  };

  Aggregator();
  explicit Aggregator(Config config);

  /// Feeds bytes arriving from one sensor's uplink. `sensor_id` names the
  /// link (frames also carry it; a frame whose header disagrees with its
  /// link is dropped as misrouted).
  void HandleBytes(std::uint16_t sensor_id,
                   std::span<const std::uint8_t> bytes);

  /// Advances the aggregator clock: liveness scan, per-sensor ack emission.
  void Tick(std::int64_t tick);

  /// Drains frames queued for `sensor_id`'s downlink.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> TakeOutbound(
      std::uint16_t sensor_id);

  /// The fused ether-wide view, insertion order (the most recent
  /// `max_fused_history` events; older ones are pruned and counted).
  const std::vector<FusedEvent>& fused() const { return fused_; }
  /// Fused events a new witness merged into (vs appended) — the
  /// cross-sensor dedup counter.
  [[nodiscard]] std::uint64_t merges() const { return merges_; }
  /// Fused events evicted by the history cap.
  [[nodiscard]] std::uint64_t fused_pruned() const { return fused_pruned_; }

  [[nodiscard]] bool Known(std::uint16_t sensor_id) const;
  [[nodiscard]] const SensorStatus& status(std::uint16_t sensor_id) const;
  [[nodiscard]] std::vector<std::uint16_t> sensor_ids() const;
  [[nodiscard]] std::size_t live_sensors() const;
  /// Parse-layer discard counters for one sensor's uplink.
  [[nodiscard]] const ParseStats& parse_stats(std::uint16_t sensor_id) const;

  /// The latest federated metric values one sensor shipped (absolute,
  /// last-write-wins by name), name-sorted. Empty for an unknown sensor.
  [[nodiscard]] std::vector<MetricEntry> federated(
      std::uint16_t sensor_id) const;

  /// One Prometheus exposition for the whole fleet: every sensor's shipped
  /// metrics re-labeled `sensor="<id>"`, aggregator-native per-sensor
  /// gauges/counters, and fleet-wide fusion totals (DESIGN.md §13).
  [[nodiscard]] std::string FederatedExposition() const;

 private:
  struct Sensor {
    SensorStatus st;
    FrameParser parser;
    std::uint64_t parser_crc_seen = 0;  // last-seen bad_crc + bad_header_checksum
    std::map<std::uint32_t, Frame> reorder;    // seq -> buffered frame
    std::vector<SeqRange> declared_lost;       // cumulative, from GapReports
    std::vector<EventBatchMsg> pending_align;  // delivered before a clock fix
    std::vector<std::vector<std::uint8_t>> outbound;
    bool ack_due = false;
    std::map<std::string, MetricEntry> metrics;  // federation, by name
  };

  Sensor& Get(std::uint16_t sensor_id);
  [[nodiscard]] obs::Tracer& Trc() const {
    return config_.tracer != nullptr ? *config_.tracer
                                     : obs::Tracer::Default();
  }
  void DeliverLocked(std::uint16_t sensor_id, Sensor& s, const Frame& frame);
  void DrainLocked(std::uint16_t sensor_id, Sensor& s);
  void ObserveClock(std::uint16_t sensor_id, Sensor& s,
                    std::int64_t local_time);
  void ApplyMetrics(Sensor& s, const MetricsMsg& msg);
  void FuseBatch(std::uint16_t sensor_id, Sensor& s,
                 const EventBatchMsg& batch);
  void FuseEvent(std::uint16_t sensor_id, const EventRecord& e,
                 std::int64_t offset, const obs::TraceContext& parent);
  void PruneFused();
  void MarkLive(std::uint16_t sensor_id, Sensor& s);
  [[nodiscard]] bool DeclaredLost(const Sensor& s, std::uint32_t seq) const;

  Config config_;
  std::int64_t now_ = 0;
  std::map<std::uint16_t, Sensor> sensors_;
  std::vector<FusedEvent> fused_;
  /// (protocol, channel) -> start -> index into fused_: bounds the dedup
  /// lookup to the slack window instead of scanning the whole history.
  /// Starts never change after fusion (merges only extend `end`), so
  /// entries stay valid until pruning rebuilds the index.
  std::map<std::uint32_t, std::multimap<std::int64_t, std::size_t>>
      fuse_index_;
  std::uint64_t merges_ = 0;
  std::uint64_t fused_pruned_ = 0;
};

}  // namespace rfdump::net
