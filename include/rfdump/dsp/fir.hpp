#pragma once
// FIR filtering and filter design.
//
// Used by: the 802.11b modulator (88 Msps anti-alias LPF before decimation to
// the 8 Msps front-end rate), the Bluetooth channelizer (1 MHz channel select),
// GFSK pulse shaping (Gaussian), and the polyphase resampler prototype.

#include <cstddef>
#include <span>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/dsp/windows.hpp"

namespace rfdump::dsp {

/// Streaming FIR filter with real taps applied to a complex sample stream.
/// Keeps (taps-1) samples of history across Process() calls so a long stream
/// can be filtered in chunks with no seams.
class FirFilter {
 public:
  /// Constructs from a tap vector. Must be non-empty.
  explicit FirFilter(std::vector<float> taps);

  std::size_t tap_count() const { return taps_.size(); }
  std::span<const float> taps() const { return taps_; }

  /// Filters `input`, appending `input.size()` output samples to `out`.
  void Process(const_sample_span input, SampleVec& out);

  /// Convenience: filter a whole buffer in one shot (stateless call pattern;
  /// the internal history still advances).
  [[nodiscard]] SampleVec Filtered(const_sample_span input);

  /// Clears streaming history.
  void Reset();

  /// Group delay in samples ((N-1)/2 for the linear-phase designs below).
  double GroupDelay() const {
    return (static_cast<double>(taps_.size()) - 1.0) / 2.0;
  }

 private:
  std::vector<float> taps_;
  SampleVec history_;  // last (taps-1) input samples
  SampleVec work_;     // reusable [history | input] convolution buffer
};

/// Windowed-sinc low-pass design. `cutoff_hz` is the -6 dB edge, `sample_rate`
/// the rate the filter runs at, `num_taps` the length (odd recommended).
[[nodiscard]] std::vector<float> DesignLowPass(
    double cutoff_hz, double sample_rate, std::size_t num_taps,
    WindowType window = WindowType::kHamming);

/// Gaussian pulse-shaping filter for GFSK, normalized to unit DC gain.
/// `bt` is the bandwidth-time product (Bluetooth uses 0.5), `sps` samples per
/// symbol, `span_symbols` the filter length in symbols.
[[nodiscard]] std::vector<float> DesignGaussian(double bt, std::size_t sps,
                                                std::size_t span_symbols);

/// Root-raised-cosine design (rolloff `beta`), unit energy. Used by the
/// ZigBee O-QPSK shaper and in tests as a generic matched filter.
[[nodiscard]] std::vector<float> DesignRootRaisedCosine(
    double beta, std::size_t sps, std::size_t span_symbols);

}  // namespace rfdump::dsp
