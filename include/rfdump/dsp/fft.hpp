#pragma once
// Iterative radix-2 FFT.
//
// The frequency detector (paper §3.4/§4.6) needs small per-chunk transforms
// (256-point over 200-sample chunks); the microwave model and tests use larger
// sizes. A plan object precomputes twiddles and the bit-reversal permutation
// so the per-chunk cost is a few multiply-adds per sample.

#include <cstddef>
#include <vector>

#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp {

/// Precomputed FFT plan for a fixed power-of-two size.
class FftPlan {
 public:
  /// Creates a plan for `size` points. `size` must be a power of two >= 2.
  explicit FftPlan(std::size_t size);

  std::size_t size() const { return size_; }

  /// In-place forward DFT (no normalization).
  void Forward(sample_span data) const;

  /// In-place inverse DFT (normalized by 1/N, so Inverse(Forward(x)) == x).
  void Inverse(sample_span data) const;

  /// Convenience: forward transform of `input` (zero-padded / truncated to the
  /// plan size) into a fresh buffer.
  [[nodiscard]] SampleVec ForwardCopy(const_sample_span input) const;

  /// Power spectrum |X[k]|^2 of `input` after applying `window` (empty window
  /// means rectangular). The result has plan-size bins in standard FFT order
  /// (DC first, negative frequencies in the upper half).
  [[nodiscard]] std::vector<float> PowerSpectrum(
      const_sample_span input, std::span<const float> window = {}) const;

 private:
  void Transform(sample_span data, bool inverse) const;

  std::size_t size_;
  std::vector<std::size_t> bit_reverse_;
  std::vector<cfloat> twiddles_;          // forward twiddles, size/2 entries
};

/// True if `n` is a power of two (and nonzero).
[[nodiscard]] constexpr bool IsPowerOfTwo(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t NextPowerOfTwo(std::size_t n);

}  // namespace rfdump::dsp
