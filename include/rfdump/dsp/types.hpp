#pragma once
// Core sample types and the fixed front-end parameters shared across RFDump.
//
// The whole system operates on the complex baseband sample stream a USRP-class
// front-end delivers to the host: complex<float> at 8 Msps covering an 8 MHz
// slice of the 2.4 GHz ISM band (the USB-throughput-limited configuration the
// paper used, see DESIGN.md §5).

#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

namespace rfdump::dsp {

/// Complex baseband sample as delivered by the (emulated) RF front-end.
using cfloat = std::complex<float>;

/// A mutable window over sample memory.
using sample_span = std::span<cfloat>;
/// A read-only window over sample memory.
using const_sample_span = std::span<const cfloat>;

/// Front-end sample rate in samples/second. Fixed at 8 Msps: the USRP 1's
/// USB 2.0 link limits host-visible bandwidth to 8 MHz complex.
inline constexpr double kSampleRateHz = 8e6;

/// Monitored bandwidth, equal to the complex sample rate.
inline constexpr double kBandwidthHz = 8e6;

/// Duration of one sample in seconds (125 ns at 8 Msps).
inline constexpr double kSamplePeriodSec = 1.0 / kSampleRateHz;

/// Convert a duration in microseconds to a whole number of samples.
[[nodiscard]] constexpr std::int64_t MicrosToSamples(double micros) {
  return static_cast<std::int64_t>(micros * 1e-6 * kSampleRateHz + 0.5);
}

/// Convert a sample count to microseconds.
[[nodiscard]] constexpr double SamplesToMicros(std::int64_t samples) {
  return static_cast<double>(samples) * 1e6 / kSampleRateHz;
}

inline constexpr float kPi = std::numbers::pi_v<float>;
inline constexpr float kTwoPi = 2.0f * std::numbers::pi_v<float>;

/// Owning sample buffer.
using SampleVec = std::vector<cfloat>;

}  // namespace rfdump::dsp
