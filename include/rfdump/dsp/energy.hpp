#pragma once
// Energy / power estimation primitives used by the peak detector and the
// energy-gated baseline architecture.

#include <cmath>
#include <cstddef>
#include <vector>

#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp {

/// Instantaneous power |s|^2 of one sample, with non-finite input (NaN/Inf
/// from a corrupt front-end buffer, or overflow of the square itself) mapped
/// to 0. The energy/peak hot path uses this everywhere so that one corrupt
/// sample cannot poison a whole block's running averages.
[[nodiscard]] inline float FinitePower(cfloat s) {
  const float p = std::norm(s);
  return std::isfinite(p) ? p : 0.0f;
}

/// Mean power (|x|^2 average) of a span. Returns 0 for an empty span.
/// Non-finite samples contribute 0.
[[nodiscard]] double MeanPower(const_sample_span x);

/// Total energy (sum of |x|^2) of a span. Non-finite samples contribute 0.
[[nodiscard]] double TotalEnergy(const_sample_span x);

/// Streaming moving-average of instantaneous power over a fixed window.
/// This is the protocol-agnostic computation at the heart of the paper's peak
/// detector (§4.3): a 20-sample (2.5 us) running average smooths over noise so
/// a packet is not split into multiple peaks.
class MovingAveragePower {
 public:
  explicit MovingAveragePower(std::size_t window);

  std::size_t window() const { return window_; }

  /// Pushes one sample, returns the current windowed average power. Until the
  /// window fills, the average is over the samples seen so far.
  float Push(cfloat sample);

  /// Same, for a power value precomputed with FinitePower (the SIMD pipeline
  /// computes a whole block's power plane once and feeds it here).
  float Push(float power);

  /// Current average without pushing.
  float Average() const;

  /// Number of samples currently in the window (saturates at window()).
  std::size_t Count() const { return count_; }

  void Reset();

 private:
  std::size_t window_;
  std::vector<float> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  // Rounding drift from the running sum is purged periodically.
  std::size_t pushes_since_rebuild_ = 0;
};

}  // namespace rfdump::dsp
