#pragma once
// Decibel <-> linear conversions used throughout the detectors.

#include <cmath>

namespace rfdump::dsp {

/// Convert a linear power ratio to decibels.
[[nodiscard]] inline double PowerToDb(double power_ratio) {
  return 10.0 * std::log10(power_ratio);
}

/// Convert decibels to a linear power ratio.
[[nodiscard]] inline double DbToPower(double db) {
  return std::pow(10.0, db / 10.0);
}

/// Convert decibels to a linear amplitude (voltage) ratio.
[[nodiscard]] inline double DbToAmplitude(double db) {
  return std::pow(10.0, db / 20.0);
}

/// Convert a linear amplitude ratio to decibels.
[[nodiscard]] inline double AmplitudeToDb(double amplitude_ratio) {
  return 20.0 * std::log10(amplitude_ratio);
}

}  // namespace rfdump::dsp
