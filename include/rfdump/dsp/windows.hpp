#pragma once
// Window functions for FIR design and spectral analysis.

#include <cstddef>
#include <vector>

namespace rfdump::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris,
  kKaiser,
};

/// Generate a window of `n` coefficients. `kaiser_beta` is only used for
/// WindowType::kKaiser (typical values 5-9; higher = more sidelobe rejection).
[[nodiscard]] std::vector<float> MakeWindow(WindowType type, std::size_t n,
                                            double kaiser_beta = 7.0);

/// Zeroth-order modified Bessel function of the first kind (series expansion),
/// used by the Kaiser window.
[[nodiscard]] double BesselI0(double x);

}  // namespace rfdump::dsp
