#pragma once
// Barker spreading sequences and correlators.
//
// 802.11b at 1 and 2 Mbps spreads every symbol with the length-11 Barker code
// at 11 Mchip/s. The demodulator despreads with a matched correlator; the
// DBPSK *detector* (paper §4.5) instead correlates a precomputed 8-sample
// phase-change pattern against the 8 Msps stream, exploiting the 11:8
// chip-to-sample ratio of the USRP capture.

#include <array>
#include <cstdint>
#include <vector>

#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp {

/// Length-11 Barker sequence used by 802.11b DSSS (+1/-1 chips).
inline constexpr std::array<int, 11> kBarker11 = {+1, -1, +1, +1, -1, +1,
                                                  +1, +1, -1, -1, -1};

/// Length-13 Barker sequence (classic radar code; used in tests as a second
/// reference sequence for the correlator).
inline constexpr std::array<int, 13> kBarker13 = {+1, +1, +1, +1, +1, -1, -1,
                                                  +1, +1, -1, +1, -1, +1};

/// Sliding correlation of `x` against a +/-1 chip sequence. Output length is
/// x.size() - seq.size() + 1 (empty if x is shorter than seq). Output[i] is
/// the complex correlation of x[i..i+N) with the chips.
[[nodiscard]] SampleVec CorrelateChips(const_sample_span x,
                                       std::span<const int> chips);

/// Normalized correlation magnitude in [0, 1]: |corr| / (sqrt(N) * ||x_win||).
/// A perfectly matched window scores 1. Used for peak-picking despread timing.
[[nodiscard]] std::vector<float> NormalizedCorrelateChips(
    const_sample_span x, std::span<const int> chips);

/// One-pass variant producing both the complex correlations and the
/// normalized magnitudes (the 802.11b sync scan needs both). `corr` and
/// `norm` are resized to x.size() - chips.size() + 1; reusing the same
/// buffers across calls avoids per-window allocation.
void CorrelateChipsNormalized(const_sample_span x, std::span<const int> chips,
                              SampleVec& corr, std::vector<float>& norm);

}  // namespace rfdump::dsp
