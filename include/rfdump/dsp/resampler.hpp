#pragma once
// Rational polyphase resampling.
//
// Two uses in the system:
//  * 802.11b modulator: Barker chips at 11 Mchip/s are synthesized at 88 Msps
//    (8 samples/chip) and decimated by 11 to the 8 Msps front-end rate.
//  * 802.11b demodulator: the 8 Msps capture is resampled by 11/8 to 11 Msps
//    so the despreader sees one sample per chip.

#include <cstddef>
#include <vector>

#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp {

/// Streaming rational resampler: output rate = input rate * interp / decim.
/// Implements polyphase interpolation with a windowed-sinc prototype filter
/// designed for the composite (interp x input) rate.
class RationalResampler {
 public:
  /// `interp` (L) and `decim` (M) must be >= 1. `taps_per_phase` controls the
  /// prototype length (L * taps_per_phase taps total).
  RationalResampler(std::size_t interp, std::size_t decim,
                    std::size_t taps_per_phase = 12);

  std::size_t interp() const { return interp_; }
  std::size_t decim() const { return decim_; }

  /// Resamples `input`, appending the produced samples to `out`. Maintains
  /// state across calls so a long stream can be processed in chunks.
  void Process(const_sample_span input, SampleVec& out);

  /// One-shot convenience wrapper.
  [[nodiscard]] SampleVec Resampled(const_sample_span input);

  /// Clears streaming state.
  void Reset();

 private:
  std::size_t interp_;
  std::size_t decim_;
  std::size_t taps_per_phase_;
  // phases_[p][k] applies to x[n-k] for an output at polyphase offset p.
  std::vector<std::vector<float>> phases_;
  SampleVec window_;           // last taps_per_phase input samples (newest last)
  std::size_t filled_ = 0;     // valid samples in window_
  std::size_t phase_acc_ = 0;  // polyphase accumulator in [0, interp)
};

/// Integer decimator with windowed-sinc anti-alias low-pass filtering.
class Decimator {
 public:
  /// Keeps 1 of every `factor` samples after low-pass filtering at
  /// (sample_rate/factor)/2.
  explicit Decimator(std::size_t factor, std::size_t num_taps = 97);

  std::size_t factor() const { return factor_; }

  /// Appends the decimated stream to `out`; streaming-safe across calls.
  void Process(const_sample_span input, SampleVec& out);
  [[nodiscard]] SampleVec Decimated(const_sample_span input);
  void Reset();

 private:
  std::size_t factor_;
  FirFilter lowpass_;
  std::size_t skip_ = 0;  // filtered samples to drop before the next keep
};

}  // namespace rfdump::dsp
