#pragma once
// Runtime-dispatched SIMD kernels for the DSP hot paths (DESIGN.md §16).
//
// Every kernel exists in up to three tiers — scalar (the conformance
// reference), SSE2 (the x86-64 baseline) and AVX2 — selected once at runtime
// from CPUID, the RFDUMP_SIMD environment variable, or ForceTier(). All tiers
// of one kernel are *bit-identical* by construction: the kernels are written
// against a fixed virtual-lane model (DESIGN.md §16.2), the scalar tier
// executes the same IEEE-754 operation sequence per lane that the vector
// tiers execute per register, and no tier is compiled with FMA contraction.
// The differential harness and tests/dsp_simd_test.cpp enforce the contract.

#include <cstddef>
#include <cstdint>

#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp::simd {

/// Dispatch tiers, ordered weakest to strongest. kScalar is always available
/// and is the conformance reference every other tier must match bit-exactly.
enum class Tier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

inline constexpr int kTierCount = 3;

/// Stable lowercase tier name ("scalar", "sse2", "avx2") — the vocabulary of
/// the RFDUMP_SIMD environment variable and the CLI --simd flag.
[[nodiscard]] const char* TierName(Tier tier);

/// Parses a tier name; returns false on an unknown name. "auto" is not a
/// tier — callers handle it before parsing.
[[nodiscard]] bool ParseTier(const char* name, Tier& out);

/// True if this build + CPU can execute the tier.
[[nodiscard]] bool TierSupported(Tier tier);

/// Strongest tier this CPU supports (CPUID probe, cached).
[[nodiscard]] Tier DetectBestTier();

/// The tier the kernel table currently dispatches to. Resolution order:
/// ForceTier() > RFDUMP_SIMD env (read once, first call) > DetectBestTier().
[[nodiscard]] Tier ActiveTier();

/// Forces dispatch to `tier` for the whole process (tests, CLI --simd, CI
/// conformance legs). Throws std::runtime_error if the tier is not supported
/// on this CPU/build. Not meant to be raced against in-flight kernels: set it
/// before processing starts.
void ForceTier(Tier tier);

/// Drops a ForceTier() override, returning to env/auto resolution.
void ClearForcedTier();

/// The per-tier kernel table. One function pointer per vectorized hot-path
/// kernel; semantics (and the exact FP operation order they must implement)
/// are specified in DESIGN.md §16.
struct Kernels {
  Tier tier = Tier::kScalar;

  /// out[i] = sum_k chips[k] * x[i+k], k ascending per output, for
  /// i in [0, n_out). Complex-by-real multiply-accumulate.
  void (*correlate_chips)(const cfloat* x, std::size_t n_out, const int* chips,
                          std::size_t n_chips, cfloat* out);

  /// out[n] = sum_k taps[k] * work[n + n_taps - 1 - k], k ascending per
  /// output, for n in [0, n_out). The FIR inner product over a contiguous
  /// [history | input] buffer.
  void (*fir_complex)(const cfloat* work, std::size_t n_out, const float* taps,
                      std::size_t n_taps, cfloat* out);

  /// out[i] = CanonicalAtan2(im(z), re(z)) with z = x[i+1] * conj(x[i])
  /// (naive complex product: re = ar*br + ai*bi, im = ai*br - ar*bi),
  /// for i in [0, n-1). Requires n >= 1.
  void (*phase_diff)(const cfloat* x, std::size_t n, float* out);

  /// out[i] = CanonicalAtan2(im(x[i]), re(x[i])) for i in [0, n).
  void (*instant_phase)(const cfloat* x, std::size_t n, float* out);

  /// Sum of FinitePower(x[i]) in the canonical 4-lane double accumulator
  /// model: lane j accumulates elements i with i % 4 == j over the body
  /// n - n % 4; lanes combine as (l0+l2)+(l1+l3); the tail is added
  /// sequentially after the combine.
  double (*sum_finite_power)(const cfloat* x, std::size_t n);

  /// out[i] = FinitePower(x[i]) = |x[i]|^2 with non-finite mapped to 0.
  void (*power_plane)(const cfloat* x, std::size_t n, float* out);

  /// Classifies each sample: non-finite re/im -> *nonfinite, else
  /// |re| >= rail or |im| >= rail -> *saturated. Pass rail = +inf to count
  /// only non-finite samples. Counts are added to the out-params.
  void (*health_scan)(const cfloat* x, std::size_t n, float rail,
                      std::uint64_t* nonfinite, std::uint64_t* saturated);

  /// Sum of x[i] * conj(x[i-1]) for i in [1, n) in the canonical 8-lane
  /// float accumulator model (DESIGN.md §16.2): product j of the body goes to
  /// lane j % 8; lanes combine as ((l0+l2)+(l4+l6)) + ((l1+l3)+(l5+l7));
  /// the tail is accumulated sequentially after the combine.
  cfloat (*conj_mul_sum)(const cfloat* x, std::size_t n);
};

/// Kernel table of ActiveTier(). One relaxed atomic load; safe to call from
/// any thread.
[[nodiscard]] const Kernels& Active();

/// Kernel table of a specific tier (conformance tests compare tiers
/// pairwise). Throws std::runtime_error if unsupported.
[[nodiscard]] const Kernels& Table(Tier tier);

/// The canonical scalar atan2 every tier implements lane-wise: a branchless
/// cephes-style polynomial (|err| < 2 ulp vs libm) built only from IEEE
/// +,-,*,/ and bitwise selects, so identical operation sequences give
/// identical bits on every tier. Exposed for tests and for callers that need
/// single values consistent with the vector kernels.
[[nodiscard]] float CanonicalAtan2(float y, float x);

}  // namespace rfdump::dsp::simd
