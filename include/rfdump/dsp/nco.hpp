#pragma once
// Numerically controlled oscillator / complex mixer.
//
// Used to place transmitter signals at their channel offsets inside the 8 MHz
// monitored band and by the Bluetooth channelizer to translate a hop channel
// to baseband.

#include <cmath>

#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp {

/// Phase-accumulator oscillator producing exp(j*(phase0 + n*w)).
class Nco {
 public:
  /// `freq_hz` relative to `sample_rate` (may be negative).
  Nco(double freq_hz, double sample_rate, double initial_phase = 0.0)
      : phase_(initial_phase),
        step_(2.0 * 3.14159265358979323846 * freq_hz / sample_rate) {}

  /// Next oscillator sample; advances the phase.
  cfloat Next() {
    const cfloat v(static_cast<float>(std::cos(phase_)),
                   static_cast<float>(std::sin(phase_)));
    Advance(1);
    return v;
  }

  /// Mixes `io` in place: io[n] *= exp(j*phase[n]).
  void Mix(sample_span io) {
    for (auto& s : io) s *= Next();
  }

  /// Advances the phase by `n` steps without producing output.
  void Advance(std::int64_t n) {
    phase_ += step_ * static_cast<double>(n);
    // Keep the accumulator bounded to preserve precision on long runs.
    constexpr double kTwoPiD = 2.0 * 3.14159265358979323846;
    if (phase_ > kTwoPiD || phase_ < -kTwoPiD) {
      phase_ = std::fmod(phase_, kTwoPiD);
    }
  }

  double phase() const { return phase_; }
  double step() const { return step_; }

 private:
  double phase_;
  double step_;
};

}  // namespace rfdump::dsp
