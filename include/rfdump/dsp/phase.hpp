#pragma once
// Phase extraction and derivatives — the protocol-agnostic computation behind
// the paper's phase detectors (§3.3): one arctan per sample gives the IF
// phase; the first derivative carries the frequency offset (=> channel), the
// second derivative is ~0 for continuous-phase (GFSK/GMSK) signals, and jumps
// in the first derivative mark PSK symbol transitions.

#include <vector>

#include "rfdump/dsp/types.hpp"

namespace rfdump::dsp {

/// Instantaneous phase of each sample, in (-pi, pi].
[[nodiscard]] std::vector<float> InstantPhase(const_sample_span x);

/// Phase difference between consecutive samples computed as
/// arg(x[n] * conj(x[n-1])) — naturally wrapped into (-pi, pi], which is the
/// first derivative of phase without explicit unwrapping. Output has
/// x.size()-1 entries (empty input -> empty output).
[[nodiscard]] std::vector<float> PhaseDiff(const_sample_span x);

/// Second difference of phase: diff of PhaseDiff, wrapped to (-pi, pi].
/// Output has x.size()-2 entries.
[[nodiscard]] std::vector<float> PhaseSecondDiff(const_sample_span x);

/// Wraps an angle to (-pi, pi].
[[nodiscard]] float WrapPhase(float angle);

/// Unwraps a phase sequence in place (removes 2*pi jumps).
void UnwrapInPlace(std::vector<float>& phase);

/// Histogram of angles over (-pi, pi] with `bins` equal bins. Used by the
/// constellation classifier: a BPSK burst fills 2 opposite bins, QPSK 4, etc.
[[nodiscard]] std::vector<std::size_t> PhaseHistogram(
    std::span<const float> phases, std::size_t bins);

}  // namespace rfdump::dsp
