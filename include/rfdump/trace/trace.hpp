#pragma once
// Trace file I/O.
//
// The paper's experiments all run from recorded USRP traces (streams of
// complex samples on disk) so results are repeatable; RFDump can take a
// trace file as its source instead of the radio. This module provides that
// format plus a ground-truth sidecar for scoring.

#include <string>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/emu/ether.hpp"

namespace rfdump::trace {

/// Writes an IQ trace: a small header (magic, version, sample rate, count)
/// followed by raw complex<float> samples. Throws std::runtime_error on I/O
/// failure.
void WriteIqTrace(const std::string& path, dsp::const_sample_span samples,
                  double sample_rate_hz = dsp::kSampleRateHz);

/// Reads an IQ trace written by WriteIqTrace. Throws std::runtime_error on
/// I/O failure or a malformed header. `sample_rate_out` (optional) receives
/// the recorded rate.
[[nodiscard]] dsp::SampleVec ReadIqTrace(const std::string& path,
                                         double* sample_rate_out = nullptr);

/// Writes ground-truth records alongside a trace.
void WriteGroundTruth(const std::string& path,
                      const std::vector<emu::TruthRecord>& records);

/// Reads a ground-truth sidecar.
[[nodiscard]] std::vector<emu::TruthRecord> ReadGroundTruth(
    const std::string& path);

}  // namespace rfdump::trace
