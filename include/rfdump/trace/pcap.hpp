#pragma once
// pcap export — the point of a tcpdump-for-the-ether is interoperating with
// the tcpdump/wireshark toolchain. Decoded 802.11 MPDUs are written as a
// classic pcap file with LINKTYPE_IEEE802_11 (105), one record per frame,
// timestamped from the sample position; wireshark opens it directly.

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/core/pipeline.hpp"

namespace rfdump::trace {

/// LINKTYPE_IEEE802_11 per the pcap spec.
inline constexpr std::uint32_t kLinkType80211 = 105;

/// Writes the decoded 802.11 frames of a monitor report to `path` as a pcap
/// file. Only frames with decoded payloads are written (header-only CCK
/// detections carry no bytes). Returns the number of records written.
/// Throws std::runtime_error on I/O failure.
std::size_t WritePcap(const std::string& path,
                      const std::vector<phy80211::DecodedFrame>& frames,
                      double sample_rate_hz = dsp::kSampleRateHz);

/// Minimal pcap reader for round-trip testing: returns (timestamp_us, bytes)
/// records. Throws on malformed files.
struct PcapRecord {
  std::uint64_t timestamp_us = 0;
  std::vector<std::uint8_t> bytes;
};
[[nodiscard]] std::vector<PcapRecord> ReadPcap(const std::string& path,
                                               std::uint32_t* linktype_out =
                                                   nullptr);

}  // namespace rfdump::trace
