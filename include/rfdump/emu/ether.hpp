#pragma once
// Wireless ether emulator.
//
// Plays the role of the CMU wireless emulator testbed in the paper's
// evaluation (§5): transmitters contribute sample-accurate bursts at
// controlled SNRs, the emulator mixes them onto one 8 Msps front-end stream
// with AWGN, and keeps authoritative per-packet ground truth so detector
// accuracy (miss rate / false positives) can be scored exactly.

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/core/protocols.hpp"
#include "rfdump/dsp/types.hpp"
#include "rfdump/util/rng.hpp"

namespace rfdump::emu {

/// Ground-truth record for one transmission (or attempted transmission).
struct TruthRecord {
  core::Protocol protocol = core::Protocol::kUnknown;
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;   // one past the last sample
  double snr_db = 0.0;           // per-sample SNR at the monitor
  std::uint32_t flow_id = 0;     // transmitter / session identifier
  std::uint64_t packet_id = 0;   // e.g. ICMP seq or Bluetooth ping seq
  bool visible = true;           // false: transmitted outside the captured band
  std::string kind;              // "DATA", "ACK", "BEACON", "L2PING", ...
};

/// Accumulates transmissions and renders the composite sample stream.
class Ether {
 public:
  struct Config {
    double noise_power = 1.0;  // AWGN power (the noise floor)
    unsigned adc_bits = 0;     // 0 = ideal front-end, else quantize (e.g. 12)
    float adc_full_scale = 64.0f;
  };

  Ether();
  explicit Ether(Config config, std::uint64_t seed = 1);

  /// Mixes `burst` in at `start_sample`, scaled so its mean power is
  /// snr_db above the noise floor. Also appends a truth record (start/end
  /// filled in from the burst position).
  void AddBurst(dsp::const_sample_span burst, std::int64_t start_sample,
                double snr_db, TruthRecord meta);

  /// Records a transmission the front-end cannot capture (e.g. a Bluetooth
  /// hop outside the 8 MHz band). `meta.visible` is forced to false.
  void AddInvisible(TruthRecord meta);

  /// Renders samples [0, duration): the mixed bursts plus AWGN (plus ADC
  /// quantization if configured). May be called once; bursts extending past
  /// `duration` are truncated.
  [[nodiscard]] dsp::SampleVec Render(std::int64_t duration_samples);

  /// All truth records, in insertion order.
  const std::vector<TruthRecord>& truth() const { return truth_; }

  /// Truth records for one protocol that are visible in-band.
  [[nodiscard]] std::vector<TruthRecord> VisibleTruth(
      core::Protocol protocol) const;

  /// Highest end_sample over all visible records (0 if none).
  [[nodiscard]] std::int64_t LastActivity() const;

  const Config& config() const { return config_; }
  util::Xoshiro256& rng() { return rng_; }

 private:
  Config config_;
  util::Xoshiro256 rng_;
  dsp::SampleVec mix_;
  std::vector<TruthRecord> truth_;
};

/// Fraction of [0, duration) covered by visible truth intervals (medium
/// utilization, overlap counted once).
[[nodiscard]] double MediumUtilization(const std::vector<TruthRecord>& truth,
                                       std::int64_t duration_samples);

}  // namespace rfdump::emu
