#pragma once
// Impaired front-end emulation.
//
// emu::Ether renders an ideal composite stream; a real USRP-over-USB capture
// is nothing like ideal. This layer wraps a rendered stream and replays it
// the way a cheap front-end actually delivers it: in bounded driver buffers
// (timestamped segments) with USB-overrun sample drops, occasional duplicate
// buffer deliveries, ADC saturation, DC offset, carrier-frequency drift, and
// NaN/Inf bursts from DMA/driver corruption. Every injected fault is recorded
// in a ground-truth log so robustness tests can score the monitor exactly:
// which gaps it must report, which packets were corrupted, and which frames
// it had an honest chance to decode.
//
// All randomness comes from one seeded Xoshiro256, so a fault scenario is
// reproducible bit-for-bit from (stream, config, seed).

#include <cstdint>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/rng.hpp"

namespace rfdump::emu {

enum class FaultKind {
  kDrop,        // USB overrun: a contiguous run of samples never delivered
  kDuplicate,   // a delivered buffer re-delivered (timestamps go backwards)
  kNonFinite,   // NaN/Inf burst overwriting delivered samples
  kSaturation,  // ADC clipping active over the whole stream
  kDcOffset,    // constant DC offset over the whole stream
  kCfoDrift,    // carrier frequency offset (+ linear drift) over the stream
};

[[nodiscard]] const char* FaultKindName(FaultKind kind);

/// Ground-truth record for one injected fault. Positions are in the original
/// (pre-impairment) stream timeline, the same timeline segment timestamps and
/// Ether truth records use.
struct FaultRecord {
  FaultKind kind = FaultKind::kDrop;
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;  // one past the last affected sample
  double magnitude = 0.0;       // kind-specific: clip rail, offset, Hz, ...

  [[nodiscard]] std::int64_t length() const {
    return end_sample - start_sample;
  }
};

/// One front-end delivery: `samples` beginning at absolute stream position
/// `start_sample`. Consecutive segments are contiguous unless samples were
/// dropped (next start jumps forward) or a buffer was re-delivered (next
/// start jumps backwards).
struct Segment {
  std::int64_t start_sample = 0;
  dsp::SampleVec samples;
};

/// Replays a rendered stream through a configurable fault model.
class FrontEnd {
 public:
  struct Config {
    /// Delivery granularity: each segment's length is drawn uniformly from
    /// [segment_min_samples, segment_max_samples] (then truncated by stream
    /// end or a scheduled drop).
    std::size_t segment_min_samples = 8 * 1024;
    std::size_t segment_max_samples = 64 * 1024;

    /// USB-overrun drops: mean events per second of stream time; each drop
    /// loses a uniform [drop_min_samples, drop_max_samples] run.
    double drops_per_second = 0.0;
    std::int64_t drop_min_samples = 2'000;
    std::int64_t drop_max_samples = 40'000;

    /// Duplicate deliveries: mean events per second. The segment containing
    /// the event point is delivered twice (second copy with its original
    /// timestamp, i.e. the stream position moves backwards).
    double duplicates_per_second = 0.0;

    /// NaN/Inf bursts: mean events per second; each burst overwrites a
    /// uniform [nonfinite_min_samples, nonfinite_max_samples] run.
    double nonfinite_per_second = 0.0;
    std::int64_t nonfinite_min_samples = 4;
    std::int64_t nonfinite_max_samples = 64;

    /// ADC saturation: clamp I and Q to [-clip_amplitude, clip_amplitude].
    /// 0 disables clipping.
    float clip_amplitude = 0.0f;

    /// Constant DC offset added to every sample (mixer/ADC bias).
    dsp::cfloat dc_offset{0.0f, 0.0f};

    /// Carrier frequency offset at t = 0 plus a linear drift (oscillator
    /// warm-up): instantaneous offset is cfo_hz + cfo_drift_hz_per_sec * t.
    double cfo_hz = 0.0;
    double cfo_drift_hz_per_sec = 0.0;

    /// Sample-clock skew: segment timestamps are reported in the sensor's
    /// *own* clock, `local = true + clock_offset_samples`. A fleet of
    /// front ends over one ether each misreport time differently; the
    /// aggregator (net/aggregator.hpp) re-aligns them. The fault log stays
    /// in the true (pre-offset) timeline.
    std::int64_t clock_offset_samples = 0;
  };

  /// Takes a copy of `stream` so the caller's buffer may be released.
  FrontEnd(dsp::const_sample_span stream, Config config,
           std::uint64_t seed = 1);

  /// True once every sample that will ever be delivered has been delivered.
  [[nodiscard]] bool Done() const;

  /// Next delivery. Returns an empty segment once Done().
  [[nodiscard]] Segment NextSegment();

  /// Convenience: delivers the whole stream as a segment list.
  [[nodiscard]] std::vector<Segment> DrainAll();

  /// Ground-truth fault log, in schedule order (whole-stream impairments
  /// first, then point events by position).
  const std::vector<FaultRecord>& faults() const { return faults_; }

  /// Fault records of one kind.
  [[nodiscard]] std::vector<FaultRecord> FaultsOf(FaultKind kind) const;

  const Config& config() const { return config_; }

 private:
  void ScheduleEvents();
  void Impair(dsp::sample_span io, std::int64_t start_sample);

  Config config_;
  util::Xoshiro256 rng_;
  dsp::SampleVec stream_;
  std::vector<FaultRecord> faults_;
  std::vector<FaultRecord> drops_;       // sorted, disjoint
  std::vector<FaultRecord> bursts_;      // sorted non-finite runs
  std::vector<std::int64_t> dup_points_; // sorted duplicate event positions
  std::size_t next_dup_ = 0;
  std::int64_t cursor_ = 0;              // next original-timeline sample
  bool have_pending_dup_ = false;
  Segment pending_dup_;
};

}  // namespace rfdump::emu
