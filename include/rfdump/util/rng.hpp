#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic element in the emulator (noise, backoff draws, hop
// sequences, payload bytes) draws from an explicitly seeded Xoshiro256++
// generator so that each experiment in EXPERIMENTS.md is reproducible
// bit-for-bit from its seed.

#include <cstdint>
#include <limits>

namespace rfdump::util {

/// Xoshiro256++ PRNG (Blackman & Vigna). Small, fast, and good enough for
/// signal simulation; satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace rfdump::util
