#pragma once
// Thread-local scratch arena for hot-path work buffers.
//
// The block pipeline and the per-channel BT/BLE scans need short-lived
// vectors (power planes, channelized samples, discriminator output) on every
// block; allocating them per call dominated the malloc profile. A scratch
// buffer is keyed by (element type, tag type) and lives for the thread, so
// steady-state processing reuses one allocation per buffer.
//
// Rules: a caller must finish with a buffer before anything else that could
// use the same key runs on this thread (no reentrancy, no holding across
// calls into unknown code that might share the tag). Stateless pipeline
// objects stay safe under concurrent use because each thread gets its own
// arena.

#include <vector>

namespace rfdump::util {

/// The reusable thread-local buffer for key (T, Tag). Contents are
/// unspecified on entry; size/clear it before use.
template <class T, class Tag>
[[nodiscard]] std::vector<T>& Scratch() {
  thread_local std::vector<T> buf;
  return buf;
}

}  // namespace rfdump::util
