#pragma once
// Cooperative deadline handle for supervised analysis work (DESIGN.md §9).
//
// A runaway demodulator invocation — an adversarial sync pattern, corrupt
// samples, a decoder bug — must abort cleanly instead of stalling the block
// schedule. The supervision layer arms one WorkBudget per analysis
// invocation; the demodulators' sync-search and bit-decode loops Charge()
// the work they perform (in front-end-sample units, counting reprocessing)
// at coarse quanta and bail out as soon as the budget reports expiry.
//
// Lives in util (bottom layer, stdlib-only) so phy80211/phybt can depend on
// it without reaching up into core, where the Supervisor that arms it lives.
//
// Concurrency contract (TSan-enforced by tests/supervisor_test.cpp): any
// number of worker threads may call Charge()/expired() on one armed budget
// concurrently — every field they touch is a relaxed atomic, and the only
// cross-thread signal is the sticky `expired` flag, which is monotonic.
// Arm() must happen-before the workers start (it is the owner's reset, not
// a racing control channel).

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rfdump::util {

class WorkBudget {
 public:
  struct Limits {
    /// Work cap in front-end-sample units; reprocessed samples (e.g. repeated
    /// sync attempts over the same window) charge again. 0 = unlimited.
    std::uint64_t max_samples = 0;
    /// Wall-clock CPU cap for the invocation (the loops are single-threaded,
    /// so monotonic elapsed time == CPU time). 0 = unlimited.
    double max_cpu_seconds = 0.0;
  };

  /// Default-constructed budgets are unlimited; Charge() never fails.
  WorkBudget() = default;
  WorkBudget(const WorkBudget&) = delete;
  WorkBudget& operator=(const WorkBudget&) = delete;

  /// Resets accounting and applies `limits` from now. Must not race Charge().
  void Arm(const Limits& limits) {
    max_samples_.store(limits.max_samples, std::memory_order_relaxed);
    deadline_.store(
        limits.max_cpu_seconds > 0.0 ? Now() + limits.max_cpu_seconds : 0.0,
        std::memory_order_relaxed);
    charged_.store(0, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
    expired_.store(false, std::memory_order_relaxed);
  }

  /// Charges `samples` units of work. Returns false once either cap is
  /// exceeded; the caller must then abandon the invocation (keeping whatever
  /// partial results it already produced). Expiry is sticky until re-Arm().
  bool Charge(std::uint64_t samples) noexcept {
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (expired_.load(std::memory_order_relaxed)) return false;
    const std::uint64_t total =
        charged_.fetch_add(samples, std::memory_order_relaxed) + samples;
    const std::uint64_t cap = max_samples_.load(std::memory_order_relaxed);
    if (cap != 0 && total > cap) {
      expired_.store(true, std::memory_order_relaxed);
      return false;
    }
    const double deadline = deadline_.load(std::memory_order_relaxed);
    if (deadline != 0.0 && Now() > deadline) {
      expired_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  [[nodiscard]] bool expired() const noexcept {
    return expired_.load(std::memory_order_relaxed);
  }

  /// Total work units charged since Arm().
  [[nodiscard]] std::uint64_t charged() const noexcept {
    return charged_.load(std::memory_order_relaxed);
  }

  /// Number of Charge() calls since Arm() — the overhead bench multiplies
  /// this by the measured per-call cost to price the deadline checks.
  [[nodiscard]] std::uint64_t checks() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] static double Now() noexcept {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<std::uint64_t> max_samples_{0};
  std::atomic<double> deadline_{0.0};  // absolute, 0 = no CPU cap
  std::atomic<std::uint64_t> charged_{0};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<bool> expired_{false};
};

}  // namespace rfdump::util
