#pragma once
// Bit-level helpers shared by the PHY implementations. All 802.11 and
// Bluetooth fields are transmitted LSB-first, so that is the default
// convention here.

#include <cstdint>
#include <span>
#include <vector>

namespace rfdump::util {

/// A sequence of bits stored one per byte (values 0/1).
using BitVec = std::vector<std::uint8_t>;

/// Unpack bytes to bits, LSB of each byte first (802.11/Bluetooth order).
[[nodiscard]] BitVec BytesToBitsLsbFirst(std::span<const std::uint8_t> bytes);

/// Pack bits (LSB-first per byte) back to bytes. Trailing partial bytes are
/// zero-padded in the high bits.
[[nodiscard]] std::vector<std::uint8_t> BitsToBytesLsbFirst(
    std::span<const std::uint8_t> bits);

/// Unpack an integer to `count` bits, LSB first.
[[nodiscard]] BitVec UintToBitsLsbFirst(std::uint64_t value, std::size_t count);

/// Pack up to 64 bits (LSB first) into an integer.
[[nodiscard]] std::uint64_t BitsToUintLsbFirst(
    std::span<const std::uint8_t> bits);

/// Append `src` to `dst`.
void AppendBits(BitVec& dst, std::span<const std::uint8_t> src);

/// Hamming distance between two equal-length bit spans.
[[nodiscard]] std::size_t HammingDistance(std::span<const std::uint8_t> a,
                                          std::span<const std::uint8_t> b);

}  // namespace rfdump::util
