#pragma once
// CRC and checksum primitives shared by the PHY/MAC layers.
//
//  * CRC-32 (IEEE 802.3):       802.11 MPDU FCS.
//  * CRC-16 CCITT (0x1021):     802.11b PLCP header CRC; Bluetooth payload CRC
//                               (the latter seeded with the device UAP).
//  * HEC-8 (Bluetooth, 0x07^..): Bluetooth packet header check, seeded with
//                               the UAP.

#include <cstdint>
#include <span>

namespace rfdump::util {

/// IEEE 802.3 CRC-32 (reflected, init 0xFFFFFFFF, final xor 0xFFFFFFFF),
/// as used for the 802.11 frame check sequence.
[[nodiscard]] std::uint32_t Crc32(std::span<const std::uint8_t> data);

/// CRC-16 CCITT over *bits* (LSB-first data order as transmitted on air),
/// polynomial x^16 + x^12 + x^5 + 1, configurable init. The 802.11b PLCP
/// header CRC uses init 0xFFFF and transmits the ones-complement.
[[nodiscard]] std::uint16_t Crc16CcittBits(std::span<const std::uint8_t> bits,
                                           std::uint16_t init = 0xFFFF);

/// Bluetooth header error check: 8-bit LFSR with polynomial
/// x^8 + x^7 + x^5 + x^2 + x + 1 over the 10 header info bits, seeded with
/// the device UAP.
[[nodiscard]] std::uint8_t BluetoothHec(std::span<const std::uint8_t> bits,
                                        std::uint8_t uap);

}  // namespace rfdump::util
