#pragma once
// Conformance-harness scenario DSL (DESIGN.md §11).
//
// The paper's evaluation (§5) is a family of controlled ether scenarios:
// traffic mixes at swept SNRs, scored against emulator ground truth. The
// ScenarioBuilder packages that as a composable, *seed-deterministic* recipe:
// every stochastic element — AWGN, backoff draws, payload bytes, hop phases,
// front-end fault schedules — derives from ONE master seed, so any harness
// failure is reproducible from a single printed integer and two renders of
// the same builder are bit-identical.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/emu/frontend.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace rfdump::testing {

/// One rendered, ground-truthed scenario: the composite sample stream, the
/// emulator's authoritative truth records, and (when impaired) the front-end
/// fault log plus the exact segment delivery schedule.
struct RenderedScenario {
  std::uint64_t seed = 0;
  std::string name;
  dsp::SampleVec samples;                // the ideal rendered stream
  std::vector<emu::TruthRecord> truth;   // insertion order, incl. invisible
  std::vector<emu::FaultRecord> faults;  // impairment ground truth
  /// Impaired delivery: timestamped segments exactly as a hostile front end
  /// would hand them over (gaps / duplicates / NaN bursts applied). Empty
  /// for clean scenarios — feed `samples` directly.
  std::vector<emu::Segment> segments;

  [[nodiscard]] bool impaired() const { return !segments.empty(); }
  [[nodiscard]] std::int64_t duration() const {
    return static_cast<std::int64_t>(samples.size());
  }
};

/// Composes multi-protocol ether scenarios. Each traffic op is appended with
/// an explicit start offset or auto-staggered after the previous op; Render()
/// replays the recipe into a freshly seeded emu::Ether, so the builder can be
/// rendered any number of times (and on any host) with identical output.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::uint64_t master_seed,
                           std::string name = "scenario");

  // ------------------------------------------------------------ environment
  /// AWGN noise floor power (emu::Ether::Config::noise_power).
  ScenarioBuilder& NoisePower(double power);
  /// Front-end ADC quantization (0 = ideal).
  ScenarioBuilder& AdcBits(unsigned bits, float full_scale = 64.0f);
  /// dB added to every traffic op's configured SNR at render time — the
  /// harness's SNR-sweep knob (one builder, swept offsets).
  ScenarioBuilder& SnrOffsetDb(double db);
  /// Idle samples appended after the last burst (default 16'000).
  ScenarioBuilder& TailPadding(std::int64_t samples);
  /// Replays the rendered stream through emu::FrontEnd with this fault
  /// model; the front-end seed derives from the master seed.
  ScenarioBuilder& Impair(emu::FrontEnd::Config config);

  // ---------------------------------------------------------------- traffic
  /// `at_sample < 0` auto-staggers: the op starts 8'000 samples (1 ms) after
  /// the scenario's current latest activity.
  ScenarioBuilder& WifiPing(traffic::WifiPingConfig cfg = {},
                            std::int64_t at_sample = -1);
  ScenarioBuilder& WifiBroadcast(traffic::WifiBroadcastConfig cfg = {},
                                 std::int64_t at_sample = -1);
  ScenarioBuilder& Beacons(traffic::BeaconConfig cfg = {},
                           std::int64_t at_sample = -1);
  ScenarioBuilder& L2Ping(traffic::L2PingConfig cfg = {},
                          std::int64_t at_sample = -1);
  ScenarioBuilder& Zigbee(traffic::ZigbeeConfig cfg = {},
                          std::int64_t at_sample = -1);
  ScenarioBuilder& Microwave(traffic::MicrowaveConfig cfg,
                             std::int64_t at_sample,
                             std::int64_t duration_samples);
  ScenarioBuilder& Campus(traffic::CampusConfig cfg = {},
                          std::int64_t at_sample = -1);

  /// Generic traffic op: `run(ether, start, snr_offset_db)` injects traffic
  /// and returns the sample where its activity ended. This is how registry
  /// bundles contribute scenario ops (core::ProtocolBundle::canned_traffic)
  /// without the DSL naming their protocol.
  ScenarioBuilder& Traffic(
      std::function<std::int64_t(emu::Ether&, std::int64_t start,
                                 double snr_offset_db)>
          run,
      std::int64_t at_sample = -1);

  /// Renders the recipe. Deterministic: same builder state + same master
  /// seed => bit-identical RenderedScenario, byte for byte.
  [[nodiscard]] RenderedScenario Render() const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Op {
    /// Runs the generator; returns where its activity ended.
    std::function<std::int64_t(emu::Ether&, std::int64_t start,
                               double snr_offset_db)>
        run;
    std::int64_t at_sample = -1;
  };

  ScenarioBuilder& Add(Op op);

  std::uint64_t seed_;
  std::string name_;
  emu::Ether::Config ether_config_;
  double snr_offset_db_ = 0.0;
  std::int64_t tail_padding_ = 16'000;
  bool impair_ = false;
  emu::FrontEnd::Config impair_config_;
  std::vector<Op> ops_;
};

/// The canned mixed-protocol scenario family behind `rfdump_cli --selftest`
/// and the differential-oracle seed sweep. Not hand-listed: every registered
/// core::ProtocolBundle with a canned_traffic hook contributes one session
/// (802.11b pings, a Bluetooth l2ping session, LIFS-spaced ZigBee reports,
/// BLE advertising events, ...) in ascending protocol-id order — every
/// protocol the demodulator bank covers, ~0.2 s of ether per seed.
[[nodiscard]] RenderedScenario CannedMixedScenario(std::uint64_t seed);

}  // namespace rfdump::testing
