#pragma once
// Deterministic decoder fuzzing (DESIGN.md §11).
//
// The decoders are the part of the pipeline that parses attacker-controlled
// bits (the paper's monitor watches *other people's* transmissions), so they
// get a dedicated mutation-based fuzz harness. The per-protocol targets are
// not hand-listed here: every core::ProtocolBundle that registers fuzz hooks
// (phy80211-plcp, phybt-packet, phyzigbee, phyble-adv, ...) is enumerated
// via EnumerateFuzzTargets(), plus one testing-layer target:
//
//   * net-frame — net::FrameParser on raw byte streams (one-shot and a
//     chunked-feed differential that must parse identically), plus every
//     net message codec (incl. kMetrics) on frame payloads and raw bytes
//
// The fuzz/ executables wrap each target's `run` hook in
// `LLVMFuzzerTestOneInput` for libFuzzer (clang builds only), and the
// in-tree `CorpusRunner` drives it over the checked-in corpus plus
// deterministic mutations with no external dependency. Everything is seeded:
// a failing corpus run names the input file (or the master seed + round that
// mutated it), and re-running reproduces the failure bit-for-bit.
//
// The FuzzTarget enum remains as a legacy shim over the first four targets;
// registry-enumerating callers use FuzzTargetRef and never touch it.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "rfdump/util/rng.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::testing {

enum class FuzzTarget : std::uint8_t {
  kPhy80211Plcp = 0,
  kPhyBtPacket,
  kPhyZigbee,
  kNetFrame,
};
inline constexpr std::size_t kFuzzTargetCount = 4;

[[nodiscard]] const char* FuzzTargetName(FuzzTarget t);

/// Corpus subdirectory name for a target (e.g. "phy80211_plcp").
[[nodiscard]] const char* FuzzCorpusDirName(FuzzTarget t);

/// One enumerable fuzz target: a protocol bundle's fuzz hooks, or the
/// testing-layer net-frame target.
struct FuzzTargetRef {
  std::string name;        // e.g. "phyble-adv"
  std::string corpus_dir;  // subdirectory under tests/corpus/
  /// Runs one whole input (first byte = mode selector, by convention);
  /// returns the number of successful decodes.
  std::function<int(std::span<const std::uint8_t>, util::WorkBudget*)> run;
  /// Generates the i-th seed-corpus input.
  std::function<std::vector<std::uint8_t>(std::size_t, util::Xoshiro256&)>
      seed_input;
};

/// Every fuzz target: registry bundles with fuzz hooks in ascending
/// protocol-id order, then the net-frame target. Adding a protocol bundle
/// with fuzz hooks extends this list with zero edits here.
[[nodiscard]] std::vector<FuzzTargetRef> EnumerateFuzzTargets();

/// Legacy enum -> target ref (the first three map to registry bundles).
[[nodiscard]] FuzzTargetRef FuzzTargetRefFor(FuzzTarget t);

/// Runs one fuzz input through the target decoder(s). The first byte of
/// `data` selects the sub-mode (bit-level parser vs full sample-level
/// demodulator); the rest is the payload, interpreted as descrambled bits or
/// as interleaved signed I/Q bytes. Returns the number of successful decodes
/// (corpus health statistic). Decoder exceptions propagate to the caller —
/// the corpus runner records them as findings; under libFuzzer they abort.
///
/// `budget`, when non-null, is armed by the *caller*; the decoders charge
/// against it exactly as they do under the supervisor, so fuzzing exercises
/// the cooperative-deadline paths too.
int RunFuzzInput(FuzzTarget target, std::span<const std::uint8_t> data,
                 util::WorkBudget* budget = nullptr);

/// Applies one seeded mutation (bit flip, byte splat, truncate, duplicate,
/// insert, chunk swap) in place. Deterministic given the RNG state.
/// (Forwards to core::FuzzMutateInput, which bundle TUs use directly.)
void MutateInput(std::vector<std::uint8_t>& data, util::Xoshiro256& rng);

/// Writes the deterministic seed corpus for `ref` into `dir` (created if
/// missing): structurally valid inputs (real PLCP headers, real Bluetooth
/// packet bits, real modulated frames) plus seeded mutations and boundary
/// cases. Returns the number of files written (>= `count`). Regeneration
/// with the same seed is bit-identical, so the checked-in corpus under
/// tests/corpus/ can always be rebuilt (see README).
std::size_t WriteSeedCorpus(const FuzzTargetRef& ref, const std::string& dir,
                            std::size_t count = 100, std::uint64_t seed = 1);

/// Legacy-enum convenience overload.
std::size_t WriteSeedCorpus(FuzzTarget target, const std::string& dir,
                            std::size_t count = 100, std::uint64_t seed = 1);

/// In-tree corpus runner: executes every file in a corpus directory (plus
/// optional mutation rounds) under a WorkBudget and a wall-clock hang check.
class CorpusRunner {
 public:
  struct Config {
    /// Per-input cooperative budget; keeps adversarial inputs from running
    /// unbounded inside the decoders (the same mechanism the supervisor
    /// uses in production).
    util::WorkBudget::Limits limits{.max_samples = 64u << 20,
                                    .max_cpu_seconds = 2.0};
    /// Wall-clock ceiling per input; an input that exceeds it *despite* the
    /// budget is recorded as a hang finding.
    double hang_wall_seconds = 5.0;
    /// Where crash/hang repro inputs are written (created on first finding).
    /// Empty = don't write repro files.
    std::string repro_dir;
    /// Extra seeded mutation rounds per corpus input (0 = corpus only).
    int mutation_rounds = 0;
    /// Master seed for the mutation rounds.
    std::uint64_t seed = 1;
  };

  /// One crash or hang, with enough context to reproduce it.
  struct Finding {
    FuzzTarget target = FuzzTarget::kPhy80211Plcp;
    std::string kind;        // "crash" | "hang"
    std::string input_name;  // corpus file, or "<file>+round<k>" for mutants
    std::string detail;      // exception what() or elapsed wall time
    std::string repro_path;  // written repro file ("" if repro_dir unset)
    /// Target name (FuzzTargetRef::name); set for every finding, including
    /// registry targets the legacy enum cannot represent.
    std::string target_name;
  };

  struct Result {
    std::size_t inputs_run = 0;
    std::size_t decodes = 0;          // successful decodes across all inputs
    std::size_t budget_expiries = 0;  // inputs contained by the WorkBudget
    std::vector<Finding> findings;

    [[nodiscard]] bool ok() const { return findings.empty(); }
    [[nodiscard]] std::string Summary(const std::string& target_name) const;
    [[nodiscard]] std::string Summary(FuzzTarget target) const;
  };

  explicit CorpusRunner(Config config) : config_(std::move(config)) {}

  /// Runs every regular file in `corpus_dir` (sorted by name, so runs are
  /// order-deterministic), then `config.mutation_rounds` mutants of each.
  [[nodiscard]] Result RunDirectory(const FuzzTargetRef& ref,
                                    const std::string& corpus_dir);
  [[nodiscard]] Result RunDirectory(FuzzTarget target,
                                    const std::string& corpus_dir);

  /// Runs a single in-memory input (used by RunDirectory and by tests).
  void RunOne(const FuzzTargetRef& ref, std::span<const std::uint8_t> data,
              const std::string& input_name, Result& result);
  void RunOne(FuzzTarget target, std::span<const std::uint8_t> data,
              const std::string& input_name, Result& result);

 private:
  Config config_;
};

}  // namespace rfdump::testing
