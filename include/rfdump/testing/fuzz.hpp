#pragma once
// Deterministic decoder fuzzing (DESIGN.md §11).
//
// The decoders are the part of the pipeline that parses attacker-controlled
// bits (the paper's monitor watches *other people's* transmissions), so they
// get a dedicated mutation-based fuzz harness. Three entry points are
// exposed, one per decoder family:
//
//   * kPhy80211Plcp — phy80211::ParsePlcpHeader on raw header bits, and the
//     full phy80211::Demodulator on byte-derived IQ samples
//   * kPhyBtPacket  — phybt::VerifySyncWord + phybt::ParsePacketBits on raw
//     bits, and the full phybt::Demodulator on byte-derived IQ samples
//   * kPhyZigbee    — phyzigbee::DecodeFrame on byte-derived IQ samples
//   * kNetFrame     — net::FrameParser on raw byte streams (one-shot and a
//     chunked-feed differential that must parse identically), plus every
//     net message codec (incl. kMetrics) on frame payloads and raw bytes
//
// `RunFuzzInput` is the single dispatch function; the fuzz/ executables wrap
// it in `LLVMFuzzerTestOneInput` for libFuzzer (clang builds only), and the
// in-tree `CorpusRunner` drives it over the checked-in corpus plus
// deterministic mutations with no external dependency. Everything is seeded:
// a failing corpus run names the input file (or the master seed + round that
// mutated it), and re-running reproduces the failure bit-for-bit.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rfdump/util/rng.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::testing {

enum class FuzzTarget : std::uint8_t {
  kPhy80211Plcp = 0,
  kPhyBtPacket,
  kPhyZigbee,
  kNetFrame,
};
inline constexpr std::size_t kFuzzTargetCount = 4;

[[nodiscard]] const char* FuzzTargetName(FuzzTarget t);

/// Corpus subdirectory name for a target (e.g. "phy80211_plcp").
[[nodiscard]] const char* FuzzCorpusDirName(FuzzTarget t);

/// Runs one fuzz input through the target decoder(s). The first byte of
/// `data` selects the sub-mode (bit-level parser vs full sample-level
/// demodulator); the rest is the payload, interpreted as descrambled bits or
/// as interleaved signed I/Q bytes. Returns the number of successful decodes
/// (corpus health statistic). Decoder exceptions propagate to the caller —
/// the corpus runner records them as findings; under libFuzzer they abort.
///
/// `budget`, when non-null, is armed by the *caller*; the decoders charge
/// against it exactly as they do under the supervisor, so fuzzing exercises
/// the cooperative-deadline paths too.
int RunFuzzInput(FuzzTarget target, std::span<const std::uint8_t> data,
                 util::WorkBudget* budget = nullptr);

/// Applies one seeded mutation (bit flip, byte splat, truncate, duplicate,
/// insert, chunk swap) in place. Deterministic given the RNG state.
void MutateInput(std::vector<std::uint8_t>& data, util::Xoshiro256& rng);

/// Writes the deterministic seed corpus for `target` into `dir` (created if
/// missing): structurally valid inputs (real PLCP headers, real Bluetooth
/// packet bits, real modulated frames) plus seeded mutations and boundary
/// cases. Returns the number of files written (>= `count`). Regeneration
/// with the same seed is bit-identical, so the checked-in corpus under
/// tests/corpus/ can always be rebuilt (see README).
std::size_t WriteSeedCorpus(FuzzTarget target, const std::string& dir,
                            std::size_t count = 100, std::uint64_t seed = 1);

/// In-tree corpus runner: executes every file in a corpus directory (plus
/// optional mutation rounds) under a WorkBudget and a wall-clock hang check.
class CorpusRunner {
 public:
  struct Config {
    /// Per-input cooperative budget; keeps adversarial inputs from running
    /// unbounded inside the decoders (the same mechanism the supervisor
    /// uses in production).
    util::WorkBudget::Limits limits{.max_samples = 64u << 20,
                                    .max_cpu_seconds = 2.0};
    /// Wall-clock ceiling per input; an input that exceeds it *despite* the
    /// budget is recorded as a hang finding.
    double hang_wall_seconds = 5.0;
    /// Where crash/hang repro inputs are written (created on first finding).
    /// Empty = don't write repro files.
    std::string repro_dir;
    /// Extra seeded mutation rounds per corpus input (0 = corpus only).
    int mutation_rounds = 0;
    /// Master seed for the mutation rounds.
    std::uint64_t seed = 1;
  };

  /// One crash or hang, with enough context to reproduce it.
  struct Finding {
    FuzzTarget target = FuzzTarget::kPhy80211Plcp;
    std::string kind;        // "crash" | "hang"
    std::string input_name;  // corpus file, or "<file>+round<k>" for mutants
    std::string detail;      // exception what() or elapsed wall time
    std::string repro_path;  // written repro file ("" if repro_dir unset)
  };

  struct Result {
    std::size_t inputs_run = 0;
    std::size_t decodes = 0;          // successful decodes across all inputs
    std::size_t budget_expiries = 0;  // inputs contained by the WorkBudget
    std::vector<Finding> findings;

    [[nodiscard]] bool ok() const { return findings.empty(); }
    [[nodiscard]] std::string Summary(FuzzTarget target) const;
  };

  explicit CorpusRunner(Config config) : config_(std::move(config)) {}

  /// Runs every regular file in `corpus_dir` (sorted by name, so runs are
  /// order-deterministic), then `config.mutation_rounds` mutants of each.
  [[nodiscard]] Result RunDirectory(FuzzTarget target,
                                    const std::string& corpus_dir);

  /// Runs a single in-memory input (used by RunDirectory and by tests).
  void RunOne(FuzzTarget target, std::span<const std::uint8_t> data,
              const std::string& input_name, Result& result);

 private:
  Config config_;
};

}  // namespace rfdump::testing
