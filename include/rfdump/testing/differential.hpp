#pragma once
// Differential oracle: naïve vs RFDump (DESIGN.md §11).
//
// The paper's central claim (§5) is that RFDump's cheap detectors lose
// *nothing* against the run-every-demodulator baseline. The differential
// oracle turns that into an executable assertion: one rendered scenario is
// monitored by
//
//   * NaivePipeline, energy gate off   (Figure 1)
//   * NaivePipeline, energy gate on    (Figure 1 + energy detection)
//   * RFDumpPipeline at executor width 1
//   * RFDumpPipeline at executor width N (the parallel analysis path)
//
// and the decoded frame/packet sets are compared:
//
//   1. rfdump@1 vs rfdump@N must be bit-identical (the DESIGN.md §10
//      determinism contract) — any divergence is a hard mismatch.
//   2. Across architectures, frame sets are matched by (protocol, position
//      within a slack window, payload size). A decode present in one
//      architecture and absent in another is a hard mismatch if it overlaps
//      a ground-truth record (somebody missed a real packet); if it matches
//      no truth record it is a *tolerated* difference — the paper explicitly
//      allows detector false positives, and a false-positive interval handed
//      to a demodulator can occasionally decode garbage the other
//      architecture never looked at.
//
// Every result carries the scenario seed, so a failing sweep prints a single
// integer that reproduces the divergence.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/testing/scenario.hpp"

namespace rfdump::testing {

struct DifferentialPolicy {
  /// Executor width of the wide RFDump run.
  int wide_threads = 4;
  /// Start-position slack when matching decodes across architectures: the
  /// naive demodulators scan the whole stream while RFDump scans padded
  /// intervals, so sync positions may differ by a few samples (the pipeline
  /// dedup window is 16).
  std::int64_t match_slack_samples = 16;
  /// Tolerate architecture-unique decodes that overlap no truth record
  /// (the paper's allowed detector false positives). Set false to demand
  /// strict set equality.
  bool tolerate_spurious = true;
  /// Demodulator bank shared by all four runs.
  core::AnalysisConfig analysis;
};

/// One frame/packet present in some architectures and absent from others.
struct DifferentialMismatch {
  core::Protocol protocol = core::Protocol::kUnknown;
  std::string key;        // human-readable decode fingerprint
  std::string present_in; // comma-separated architecture names
  std::string absent_from;
  bool truth_backed = false;  // overlaps a ground-truth record
};

struct DifferentialResult {
  std::uint64_t seed = 0;
  std::string scenario;
  /// Hard failures: truth-backed set differences, or any rfdump@1 vs
  /// rfdump@N divergence.
  std::vector<DifferentialMismatch> mismatches;
  /// Spurious-only differences the policy tolerated.
  std::vector<DifferentialMismatch> tolerated;
  /// Decodes per architecture (naive, naive+energy, rfdump@1, rfdump@N).
  std::size_t decodes[4] = {0, 0, 0, 0};

  [[nodiscard]] bool ok() const { return mismatches.empty(); }
  /// One-line verdict plus one line per mismatch, each carrying the seed.
  [[nodiscard]] std::string Summary() const;
};

/// Runs the four architectures over one scenario and diffs the results.
[[nodiscard]] DifferentialResult RunDifferential(
    const RenderedScenario& scenario, const DifferentialPolicy& policy = {});

/// Seed sweep over the canned mixed scenario family. Returns one result per
/// seed; `ok()` over all of them is the PR gate.
[[nodiscard]] std::vector<DifferentialResult> RunDifferentialSweep(
    std::span<const std::uint64_t> seeds, const DifferentialPolicy& policy = {});

/// Byte-exact, result-bearing fingerprint of a report: one line per
/// detection/decode/event including payload bytes. Equal fingerprints mean
/// the reports are interchangeable. Used for the rfdump@1 vs rfdump@N
/// determinism gate and for the forced-scalar vs forced-SIMD dispatch-tier
/// differential (DESIGN.md §16).
[[nodiscard]] std::vector<std::string> ExactFingerprint(
    const core::MonitorReport& r);

}  // namespace rfdump::testing
