#pragma once
// Quarantine replay (DESIGN.md §11).
//
// The supervisor quarantines failed analysis intervals; the CLI's
// `--quarantine DIR` dumps each one as an .iq snippet plus a one-line JSON
// sidecar. This module owns that format — the writer (shared with the CLI)
// and the loader the conformance tests use to replay a quarantined interval
// and assert the recorded outcome reproduces.

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/core/supervisor.hpp"
#include "rfdump/dsp/types.hpp"

namespace rfdump::testing {

/// One quarantined interval loaded back from disk.
struct ReplayFile {
  std::string iq_path;
  dsp::SampleVec samples;       // the .iq snapshot
  double sample_rate_hz = 0.0;

  // Sidecar fields (defaults if the .json is missing).
  bool has_sidecar = false;
  std::int64_t stream_start = 0;  // absolute stream position of the interval
  std::int64_t stream_end = 0;
  core::Protocol protocol = core::Protocol::kUnknown;
  core::Outcome outcome = core::Outcome::kOk;
  std::string error;              // exception what() (empty for deadlines)
  std::size_t snapshot_samples = 0;
};

/// Minimal JSON string escaping for sidecar fields.
[[nodiscard]] std::string JsonEscape(const std::string& s);

/// Dumps the supervisor's quarantine ring into `dir` (created if missing):
/// one `qNNN_<protocol>_<start>.iq` snippet (replayable with the CLI's `-r`)
/// plus a matching `.json` sidecar per record. Returns the record count.
std::size_t WriteQuarantineDir(const std::string& dir,
                               const core::Supervisor& supervisor);

/// Loads one quarantined interval: the .iq snapshot plus its sidecar (found
/// by swapping the extension). Throws std::runtime_error if the .iq file is
/// unreadable; a missing or malformed sidecar just leaves `has_sidecar`
/// false.
[[nodiscard]] ReplayFile LoadReplay(const std::string& iq_path);

/// Loads every quarantined interval in a directory, sorted by file name
/// (i.e. quarantine order).
[[nodiscard]] std::vector<ReplayFile> LoadQuarantineDir(
    const std::string& dir);

}  // namespace rfdump::testing
