#pragma once
// Truth oracle for the conformance harness (DESIGN.md §11).
//
// core::ScoreDetections scores the cheap *detectors* (the paper's §5.1
// metrics). The oracle here scores the end of the pipe instead: decoded
// frames / packets / ZigBee frames in a MonitorReport are matched against
// emulator TruthRecords, producing per-protocol precision / recall /
// miss-rate — the numbers every future perf or refactor PR is judged
// against.
//
// Matching rule: a decode matches a truth record of its protocol when their
// sample intervals overlap by at least `min_overlap_fraction` of the truth
// record's length (decoded preambles start a little before the truth burst's
// payload and end a little after; exact boundaries are not required). One
// decode may match at most one truth record (best overlap wins); a truth
// record is `matched` if any decode matched it; a decode that matches no
// truth record is `spurious`.

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/testing/scenario.hpp"

namespace rfdump::testing {

struct MatchPolicy {
  /// Minimum overlap, as a fraction of the truth record's length, for a
  /// decode to match it.
  double min_overlap_fraction = 0.25;
  /// Count only CRC-valid decodes (FCS for Wi-Fi, CRC for Bluetooth/ZigBee).
  /// Default off: the oracle scores "monitored at all", the paper's notion
  /// of a miss — a decode with a corrupted body was still detected.
  bool require_crc_ok = false;
};

/// Per-protocol conformance between a report and ground truth.
struct ProtocolConformance {
  core::Protocol protocol = core::Protocol::kUnknown;
  std::size_t truth_packets = 0;  // visible truth records within the trace
  std::size_t matched = 0;        // truth records covered by >= 1 decode
  std::size_t missed = 0;         // truth_packets - matched
  std::size_t decoded = 0;        // decodes attributed to this protocol
  std::size_t spurious = 0;       // decodes matching no truth record

  [[nodiscard]] double Recall() const {
    return truth_packets == 0 ? 1.0
                              : static_cast<double>(matched) /
                                    static_cast<double>(truth_packets);
  }
  [[nodiscard]] double MissRate() const { return 1.0 - Recall(); }
  [[nodiscard]] double Precision() const {
    return decoded == 0 ? 1.0
                        : static_cast<double>(decoded - spurious) /
                              static_cast<double>(decoded);
  }
};

/// Whole-report conformance, tagged with the reproducing scenario seed.
struct ConformanceReport {
  std::uint64_t seed = 0;
  std::string scenario;
  std::vector<ProtocolConformance> protocols;  // only protocols with traffic
                                               // or decodes

  [[nodiscard]] const ProtocolConformance& Of(core::Protocol p) const;
  /// One line per protocol, prefixed with "seed=<seed>" so any failing
  /// assertion on the report carries its repro.
  [[nodiscard]] std::string Summary() const;
};

/// Scores a pipeline report against a scenario's ground truth.
[[nodiscard]] ConformanceReport ScoreReport(const RenderedScenario& scenario,
                                            const core::MonitorReport& report,
                                            const MatchPolicy& policy = {});

/// Same scoring against an explicit truth vector (for callers that rendered
/// outside the builder). `total_samples` bounds which truth records count.
[[nodiscard]] ConformanceReport ScoreReport(
    const std::vector<emu::TruthRecord>& truth, std::int64_t total_samples,
    const core::MonitorReport& report, const MatchPolicy& policy = {});

}  // namespace rfdump::testing
