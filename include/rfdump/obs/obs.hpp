#pragma once
// Umbrella header for the observability subsystem (DESIGN.md §8): metrics
// registry, span tracer, monotonic stopwatch. obs depends only on the
// standard library, so ANY layer may include it (it sits beside util/dsp at
// the bottom of the layering).
//
// Build-time switch: -DRFDUMP_OBS=OFF (CMake option) defines
// RFDUMP_OBS_ENABLED=0 and compiles every metric mutation and trace span to
// a no-op; Stopwatch (functional cost accounting) stays live.

#include "rfdump/obs/metrics.hpp"
#include "rfdump/obs/stopwatch.hpp"
#include "rfdump/obs/trace.hpp"
