#pragma once
// Low-overhead metrics registry: named counters, gauges and fixed-bucket
// histograms with a Prometheus-style text exposition dump.
//
// Hot-path contract: call sites resolve a metric ONCE (function-local static
// reference — GetCounter() takes a registry mutex, the returned reference is
// stable for the process lifetime) and then mutate it with a single relaxed
// atomic op per event. Reads (Snapshot / ExpositionText) are lock-protected
// and may run concurrently with writers; they see values that are each
// individually coherent (snapshot-on-read, no cross-metric consistency).
//
// Naming convention (DESIGN.md §8): `rfdump_<subsystem>_<name>`, counters end
// in `_total`; an optional label set is embedded in the registered name
// (`rfdump_dispatch_tagged_total{protocol="802.11b"}`).
//
// Compile-time escape hatch: configure with -DRFDUMP_OBS=OFF and every
// mutation below compiles to an empty inline function; the registry hands
// out shared dummy metrics and registers nothing.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef RFDUMP_OBS_ENABLED
#define RFDUMP_OBS_ENABLED 1
#endif

namespace rfdump::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) noexcept {
#if RFDUMP_OBS_ENABLED
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) noexcept {
#if RFDUMP_OBS_ENABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(double d) noexcept {
#if RFDUMP_OBS_ENABLED
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
#else
    (void)d;
#endif
  }

  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void Reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are upper edges (Prometheus `le`);
/// an implicit +Inf bucket catches the rest. Observe() is one linear scan of
/// a handful of bounds plus two relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> bounds;         // upper edges, ascending
    std::vector<std::uint64_t> counts;  // per-bucket (bounds.size() + 1)
    std::uint64_t count = 0;            // total observations
    double sum = 0.0;                   // sum of observed values

    /// Prometheus-style quantile estimate (q in [0, 1]): find the bucket
    /// holding the q-th observation and interpolate linearly inside it.
    /// Returns the highest finite bound when the rank lands in the +Inf
    /// bucket, and NaN when the histogram is empty.
    [[nodiscard]] double Quantile(double q) const;
  };
  [[nodiscard]] Snapshot GetSnapshot() const;

  void Reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Scalar-metric kind tag, stable on the wire (net/messages.hpp MetricsMsg).
enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1 };

/// One scalar metric value captured by Registry::SnapshotValues() or
/// received via metrics federation. Counters travel as doubles too — exact
/// up to 2^53 events, far past any session lifetime here.
struct MetricValue {
  std::string name;  // registered name, possibly with embedded labels
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  bool operator==(const MetricValue&) const = default;
};

/// Process-wide named-metric registry.
class Registry {
 public:
  /// The default (and normally only) registry.
  static Registry& Default();

  /// Finds or creates; the reference is stable for the process lifetime.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` are the upper bucket edges, ascending; they are fixed on first
  /// registration (later calls with the same name ignore `bounds`).
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Prometheus text exposition of every registered metric (sorted by name,
  /// one `# TYPE` line per metric family).
  [[nodiscard]] std::string ExpositionText() const;

  /// Current value of a registered counter (0 if absent) — test/summary aid.
  [[nodiscard]] std::uint64_t CounterValue(const std::string& name) const;

  /// Name-sorted snapshot of every counter and gauge (histograms are not
  /// federated in v1 — DESIGN.md §13). Feeds MetricsMsg; naturally empty
  /// under RFDUMP_OBS=OFF since the disabled registry registers nothing.
  [[nodiscard]] std::vector<MetricValue> SnapshotValues() const;

  /// Zeroes every registered metric's value (registrations persist). Used by
  /// tests and the overhead bench; not meant for the hot path.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
[[nodiscard]] std::string EscapeLabelValue(const std::string& value);

/// Merges one `key="value"` label (value escaped) into a metric name:
/// a bare name gains `{key="value"}`, a name that already carries labels
/// gets the pair appended inside the existing braces. The federation layer
/// uses this to stamp `sensor="<id>"` onto shipped sensor metrics.
[[nodiscard]] std::string WithLabel(const std::string& name,
                                    const std::string& key,
                                    const std::string& value);

/// Counter with a single label baked into the registered name:
/// LabeledCounter("rfdump_detect_tags_total", "detector", "80211-sifs") →
/// `rfdump_detect_tags_total{detector="80211-sifs"}`. Resolve once (static).
inline Counter& LabeledCounter(const std::string& family,
                               const std::string& key,
                               const std::string& value) {
  return Registry::Default().GetCounter(family + "{" + key + "=\"" +
                                        EscapeLabelValue(value) + "\"}");
}

/// Assembles a Prometheus text exposition from loose scalar values — the
/// aggregator's federation endpoint builds one from many sensors' shipped
/// snapshots plus its own native metrics. Families are sorted and emit one
/// `# TYPE` line each; integral counters print without a decimal point.
/// Plain code (no atomics), so it works identically under RFDUMP_OBS=OFF.
class ExpositionBuilder {
 public:
  void Add(std::string name, MetricKind kind, double value) {
    values_.push_back(MetricValue{std::move(name), kind, value});
  }
  void Add(const MetricValue& v) { values_.push_back(v); }

  [[nodiscard]] std::string Text() const;

 private:
  std::vector<MetricValue> values_;
};

}  // namespace rfdump::obs
