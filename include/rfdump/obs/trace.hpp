#pragma once
// Span tracer: scoped RAII spans, ring-buffered, exportable as
// chrome://tracing / Perfetto "Trace Event Format" JSON (complete "X"
// events; viewers reconstruct nesting from timestamp containment per
// thread).
//
// The tracer is DISABLED by default: an un-enabled TraceSpan costs one
// relaxed atomic load and nothing else, so spans can sit permanently in hot
// paths. Enabling (CLI --trace, tests) sizes a fixed ring; each completed
// span is one fetch_add + a plain slot write. When the ring wraps, the
// oldest spans are overwritten — a monitor that runs for hours keeps the
// most recent window, which is the one an operator asks about.
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is recorded.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rfdump/obs/context.hpp"
#include "rfdump/obs/stopwatch.hpp"

#ifndef RFDUMP_OBS_ENABLED
#define RFDUMP_OBS_ENABLED 1
#endif

namespace rfdump::obs {

class Tracer {
 public:
  struct Event {
    const char* name = "";
    double ts_us = 0.0;   // span start, microseconds since Enable()
    double dur_us = 0.0;  // span duration, microseconds
    std::uint32_t tid = 0;
    // Distributed-trace linkage (DESIGN.md §13); all zero for plain spans.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span = 0;
  };

  static Tracer& Default();

  /// Starts recording into a fresh ring of `capacity` spans and resets the
  /// trace epoch. Not thread-safe against concurrent Record().
  void Enable(std::size_t capacity = 1 << 16);
  void Disable();

  [[nodiscard]] bool enabled() const noexcept {
#if RFDUMP_OBS_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Microseconds since Enable() (meaningless while disabled).
  [[nodiscard]] double NowUs() const { return epoch_.Microseconds(); }

  /// Records one completed span. Lock-free; concurrent writers only contend
  /// on the ring index. (After the ring wraps, two writers landing on the
  /// same recycled slot can interleave — a cosmetic hazard for a diagnostic
  /// buffer, not a correctness one; events are plain data.)
  void Record(const char* name, double ts_us, double dur_us) noexcept;

  /// Record() with distributed-trace linkage: the span belongs to
  /// `trace_id` and is parented under `parent_span` (0 = root).
  void RecordLinked(const char* name, double ts_us, double dur_us,
                    std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t parent_span) noexcept;

  /// Recorded spans in timestamp order (oldest ring window dropped on wrap).
  [[nodiscard]] std::vector<Event> Events() const;

  /// Spans lost to ring wraparound since Enable() (also counted in the
  /// `rfdump_tracer_dropped_events_total` metric).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t n = next_.load(std::memory_order_relaxed);
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  /// Number of spans recorded since Enable() (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Trace Event Format JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto.
  [[nodiscard]] std::string ExportChromeJson() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_{0};
  std::vector<Event> ring_;
  Stopwatch epoch_;
};

/// One process's (or in-process node's) contribution to a fleet-wide trace:
/// a display name, a distinct chrome://tracing pid, and its span events
/// (normally Tracer::Events()). Node clocks are assumed to share the trace
/// epoch — true for the in-process fleet, where every tracer is enabled by
/// the same harness.
struct ProcessTrace {
  std::string name;
  std::uint32_t pid = 1;
  std::vector<Tracer::Event> events;
};

/// Cross-process merge tool: one chrome://tracing file for the whole fleet.
/// Each ProcessTrace renders as its own process row (a "process_name"
/// metadata event plus its spans); linked spans carry
/// trace_id/span_id/parent_span_id args so a viewer (or the chaos suite)
/// can follow one decode from a sensor's pipeline into the aggregator.
[[nodiscard]] std::string ExportFleetChromeJson(
    std::span<const ProcessTrace> processes);

/// RAII span. Construction snapshots the clock only if the tracer is
/// enabled; destruction records the completed span.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
#if RFDUMP_OBS_ENABLED
    Tracer& t = Tracer::Default();
    if (t.enabled()) {
      name_ = name;
      start_us_ = t.NowUs();
      armed_ = true;
    }
#else
    (void)name;
#endif
  }

  ~TraceSpan() {
#if RFDUMP_OBS_ENABLED
    if (armed_) {
      Tracer& t = Tracer::Default();
      t.Record(name_, start_us_, t.NowUs() - start_us_);
    }
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if RFDUMP_OBS_ENABLED
  const char* name_ = "";
  double start_us_ = 0.0;
  bool armed_ = false;
#endif
};

/// RAII span that participates in a distributed trace (DESIGN.md §13).
/// Given the upstream TraceContext (e.g. from a wire message), it continues
/// that trace — or roots a fresh one when the parent is absent — and
/// context() yields the context downstream work should carry (this span's
/// trace_id + span_id). When the tracer is disabled (or RFDUMP_OBS=OFF)
/// nothing is recorded and context() passes the parent through unchanged,
/// so an uninstrumented hop is transparent rather than trace-breaking.
class LinkedSpan {
 public:
  LinkedSpan(Tracer& tracer, const char* name, TraceContext parent) noexcept
      : ctx_(parent) {
#if RFDUMP_OBS_ENABLED
    if (tracer.enabled()) {
      tracer_ = &tracer;
      name_ = name;
      parent_span_ = parent.span_id;
      ctx_.trace_id = parent.valid() ? parent.trace_id : NewSpanId();
      ctx_.span_id = NewSpanId();
      start_us_ = tracer.NowUs();
    }
#else
    (void)tracer;
    (void)name;
#endif
  }

  ~LinkedSpan() {
#if RFDUMP_OBS_ENABLED
    if (tracer_ != nullptr) {
      tracer_->RecordLinked(name_, start_us_, tracer_->NowUs() - start_us_,
                            ctx_.trace_id, ctx_.span_id, parent_span_);
    }
#endif
  }

  LinkedSpan(const LinkedSpan&) = delete;
  LinkedSpan& operator=(const LinkedSpan&) = delete;

  /// The context downstream work (wire messages, nested spans) should carry.
  [[nodiscard]] TraceContext context() const noexcept { return ctx_; }

 private:
  TraceContext ctx_;
#if RFDUMP_OBS_ENABLED
  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  std::uint64_t parent_span_ = 0;
  double start_us_ = 0.0;
#endif
};

}  // namespace rfdump::obs

// Drops an RAII span covering the rest of the enclosing scope.
#define RFDUMP_OBS_CONCAT_INNER(a, b) a##b
#define RFDUMP_OBS_CONCAT(a, b) RFDUMP_OBS_CONCAT_INNER(a, b)
#if RFDUMP_OBS_ENABLED
#define RFDUMP_TRACE_SPAN(name) \
  ::rfdump::obs::TraceSpan RFDUMP_OBS_CONCAT(rfdump_obs_span_, __LINE__)(name)
#else
#define RFDUMP_TRACE_SPAN(name) static_cast<void>(0)
#endif
