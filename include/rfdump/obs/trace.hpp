#pragma once
// Span tracer: scoped RAII spans, ring-buffered, exportable as
// chrome://tracing / Perfetto "Trace Event Format" JSON (complete "X"
// events; viewers reconstruct nesting from timestamp containment per
// thread).
//
// The tracer is DISABLED by default: an un-enabled TraceSpan costs one
// relaxed atomic load and nothing else, so spans can sit permanently in hot
// paths. Enabling (CLI --trace, tests) sizes a fixed ring; each completed
// span is one fetch_add + a plain slot write. When the ring wraps, the
// oldest spans are overwritten — a monitor that runs for hours keeps the
// most recent window, which is the one an operator asks about.
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is recorded.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/obs/stopwatch.hpp"

#ifndef RFDUMP_OBS_ENABLED
#define RFDUMP_OBS_ENABLED 1
#endif

namespace rfdump::obs {

class Tracer {
 public:
  struct Event {
    const char* name = "";
    double ts_us = 0.0;   // span start, microseconds since Enable()
    double dur_us = 0.0;  // span duration, microseconds
    std::uint32_t tid = 0;
  };

  static Tracer& Default();

  /// Starts recording into a fresh ring of `capacity` spans and resets the
  /// trace epoch. Not thread-safe against concurrent Record().
  void Enable(std::size_t capacity = 1 << 16);
  void Disable();

  [[nodiscard]] bool enabled() const noexcept {
#if RFDUMP_OBS_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Microseconds since Enable() (meaningless while disabled).
  [[nodiscard]] double NowUs() const { return epoch_.Microseconds(); }

  /// Records one completed span. Lock-free; concurrent writers only contend
  /// on the ring index. (After the ring wraps, two writers landing on the
  /// same recycled slot can interleave — a cosmetic hazard for a diagnostic
  /// buffer, not a correctness one; events are plain data.)
  void Record(const char* name, double ts_us, double dur_us) noexcept;

  /// Recorded spans in timestamp order (oldest ring window dropped on wrap).
  [[nodiscard]] std::vector<Event> Events() const;

  /// Number of spans recorded since Enable() (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Trace Event Format JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto.
  [[nodiscard]] std::string ExportChromeJson() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_{0};
  std::vector<Event> ring_;
  Stopwatch epoch_;
};

/// RAII span. Construction snapshots the clock only if the tracer is
/// enabled; destruction records the completed span.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
#if RFDUMP_OBS_ENABLED
    Tracer& t = Tracer::Default();
    if (t.enabled()) {
      name_ = name;
      start_us_ = t.NowUs();
      armed_ = true;
    }
#else
    (void)name;
#endif
  }

  ~TraceSpan() {
#if RFDUMP_OBS_ENABLED
    if (armed_) {
      Tracer& t = Tracer::Default();
      t.Record(name_, start_us_, t.NowUs() - start_us_);
    }
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if RFDUMP_OBS_ENABLED
  const char* name_ = "";
  double start_us_ = 0.0;
  bool armed_ = false;
#endif
};

}  // namespace rfdump::obs

// Drops an RAII span covering the rest of the enclosing scope.
#define RFDUMP_OBS_CONCAT_INNER(a, b) a##b
#define RFDUMP_OBS_CONCAT(a, b) RFDUMP_OBS_CONCAT_INNER(a, b)
#if RFDUMP_OBS_ENABLED
#define RFDUMP_TRACE_SPAN(name) \
  ::rfdump::obs::TraceSpan RFDUMP_OBS_CONCAT(rfdump_obs_span_, __LINE__)(name)
#else
#define RFDUMP_TRACE_SPAN(name) static_cast<void>(0)
#endif
