#pragma once
// The single monotonic-clock helper every cost-accounting path in the repo
// reads from: the pipeline's CostLedger, the streaming monitor's shed
// controller and the benches all time with this Stopwatch, so their numbers
// are directly comparable (same clock, same conversion). Always compiled —
// per-stage cost reporting is a functional feature (Table 1 / Fig 9), not an
// observability extra, so it is NOT gated by RFDUMP_OBS.

#include <chrono>

namespace rfdump::obs {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction / last Reset().
  [[nodiscard]] double Microseconds() const { return Seconds() * 1e6; }

  /// Monotonic process-wide timestamp in seconds (arbitrary epoch). Two
  /// calls anywhere in the process are comparable.
  [[nodiscard]] static double NowSeconds() {
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace rfdump::obs
