#pragma once
// Detection records produced by the protocol-specific fast detectors: a
// tentative mapping of a sample interval to a protocol, with a confidence.
// False positives are acceptable (the analysis stage rejects them); misses
// are not, because missed packets are never monitored (paper §2.2).

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/core/protocols.hpp"

namespace rfdump::core {

struct Detection {
  Protocol protocol = Protocol::kUnknown;
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;
  float confidence = 0.0f;       // [0, 1]
  const char* detector = "";     // which detector produced this tag
};

/// Merges overlapping/adjacent detections of the same protocol (tolerating
/// `slack` samples of separation) into disjoint intervals, and clamps to
/// [0, limit). Used by the dispatcher before invoking demodulators.
[[nodiscard]] std::vector<Detection> MergeDetections(
    std::vector<Detection> detections, std::int64_t slack,
    std::int64_t limit);

/// Total sample coverage of (merged) detections.
[[nodiscard]] std::int64_t CoverageSamples(
    const std::vector<Detection>& merged);

}  // namespace rfdump::core
