#pragma once
// Waterfall / spectrogram view of the monitored band — the "what does the
// ether look like" companion to the packet listing. Used by the CLI's
// --waterfall mode and handy for eyeballing traces in tests.

#include <string>
#include <vector>

#include "rfdump/dsp/fft.hpp"

namespace rfdump::core {

/// Power-over-time-and-frequency matrix.
struct Spectrogram {
  std::size_t bins = 0;       // frequency bins (DC-centred: bin 0 = -4 MHz)
  std::size_t rows = 0;       // time slices
  double row_seconds = 0.0;   // duration of one row
  std::vector<float> power_db;  // rows x bins, row-major

  float at(std::size_t row, std::size_t bin) const {
    return power_db[row * bins + bin];
  }
};

/// Computes a spectrogram with `bins` frequency bins (power of two) and
/// ~`target_rows` time rows covering all of `x`.
[[nodiscard]] Spectrogram ComputeSpectrogram(dsp::const_sample_span x,
                                             std::size_t bins = 64,
                                             std::size_t target_rows = 48);

/// Renders the spectrogram as ASCII art (one line per row, dark->bright
/// ramp " .:-=+*#%@"), with a frequency axis header. `floor_db` and
/// `ceil_db` clamp the color ramp; pass NaN to auto-scale.
[[nodiscard]] std::string RenderAscii(const Spectrogram& gram,
                                      float floor_db = std::nanf(""),
                                      float ceil_db = std::nanf(""));

}  // namespace rfdump::core
