#pragma once
// Collision detection — the paper's stated future work (§5.1.5: "we have not
// incorporated collision detection in our detectors yet", so colliding
// packets count as misses). This extension detects overlapping transmissions
// from the power profile of a peak: when a second transmitter starts or
// stops mid-burst, the windowed power takes a sustained step. A peak with
// such steps is flagged as a collision and split into homogeneous segments
// so that the non-overlapped parts can still be classified.

#include <cstdint>
#include <vector>

#include "rfdump/core/detections.hpp"
#include "rfdump/core/peaks.hpp"

namespace rfdump::core {

/// A collision verdict for one peak.
struct CollisionInfo {
  bool collided = false;
  /// Sample indices (absolute) where the power profile steps; the peak is
  /// homogeneous between consecutive boundaries.
  std::vector<std::int64_t> boundaries;
  /// Segments [start, end) with near-constant power, strongest first removed;
  /// equal to the whole peak when no collision is present.
  std::vector<Peak> segments;
};

class CollisionDetector {
 public:
  struct Config {
    /// Power-profile averaging window (samples).
    std::size_t window = 64;
    /// Minimum sustained power step, as a linear ratio. 1.8 catches the
    /// common equal-power collision (step = 2.0) with margin for noise.
    double step_ratio = 1.8;
    /// A step must persist for this many samples to count (rejects fades
    /// and sub-window blips, which block quantization can smear across two
    /// windows).
    std::size_t persistence = 256;
    /// Segments shorter than this are merged into their neighbour.
    std::size_t min_segment = 256;
  };

  CollisionDetector();
  explicit CollisionDetector(Config config);

  /// Analyzes one peak's samples. `peak.start_sample` anchors the absolute
  /// positions in the result.
  [[nodiscard]] CollisionInfo Analyze(const Peak& peak,
                                      dsp::const_sample_span samples) const;

  /// Convenience: a Detection tagging the collided span (protocol unknown),
  /// or nothing if no collision was found.
  [[nodiscard]] std::vector<Detection> OnPeak(
      const Peak& peak, dsp::const_sample_span samples) const;

 private:
  Config config_;
};

}  // namespace rfdump::core
