#pragma once
// Streaming monitor: the real-time operating mode.
//
// The experiment pipelines process one recorded trace per call (the paper's
// evaluation mode). A live monitor instead receives the front-end stream in
// arbitrary-size segments and must emit results continuously while keeping
// up with the sample rate. StreamingMonitor wraps the RFDump pipeline in a
// block-based schedule: segments accumulate into fixed processing blocks
// with an overlap region, each block runs through detection + analysis, and
// results whose frames straddle a block boundary are deduplicated.
//
// This exploits exactly the latency tolerance the paper leans on (§2.2): a
// block of ~250 ms adds that much reporting delay but none to throughput.
//
// Fault tolerance (see DESIGN.md "Fault model and degradation policy"): the
// monitor consumes *timestamped* segments, so USB-overrun gaps and duplicate
// buffer deliveries are detected on ingest. A gap hard-splits the block
// schedule — the buffered samples are processed and detector state is reset,
// so no frame is ever decoded across missing samples. Non-finite input is
// zeroed before it can poison averages. Every block yields a HealthReport.
//
// Overload (CPU > real time) triggers graceful load shedding in the paper's
// own priority order: optional detectors first, then demodulation of
// low-confidence tags, then demodulation entirely (detection-only, the cheap
// mode of Fig 9). Hysteresis restores stages as load falls.
//
// Execution model (DESIGN.md §10): with Config::threads == 1 the monitor is
// fully serial — every Push runs detection and analysis inline, exactly the
// historical behaviour. With threads >= 2 the monitor pipelines: the caller
// thread keeps doing ingest + detection, completed blocks are handed to an
// internal analyzer thread through a bounded queue (double-buffering:
// detection of block N+1 overlaps analysis of block N), and the analyzer
// fans the demodulator bank out over a core::Executor of the configured
// width. Emission stays a single synchronised point — the analyzer thread —
// so ResultSink implementations never see concurrent calls, and the ordered
// merge keeps results identical to the serial run. When the queue is full,
// Push blocks (backpressure) and the stall is fed to the shed controller as
// an overload signal.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "rfdump/core/pipeline.hpp"

namespace rfdump::core {

class Executor;    // core/executor.hpp
class ResultSink;  // core/result_sink.hpp

/// Highest shed stage: detection only, no demodulation.
inline constexpr int kShedStageMax = 3;

/// Cumulative health across every block a StreamingMonitor has processed.
/// Unlike the per-block history (which is a bounded ring), this never loses
/// information: a monitor that has run for a week still reports exact fault
/// totals.
struct HealthSummary {
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
  std::uint32_t gap_count = 0;
  std::int64_t gap_samples = 0;
  std::int64_t overlap_samples = 0;
  std::uint64_t sanitized_samples = 0;
  std::uint64_t tagged_detections = 0;
  std::uint64_t rejected_detections = 0;
  std::uint64_t forwarded_intervals = 0;
  // Supervision outcomes (DESIGN.md §9), cumulative across all blocks.
  std::uint64_t supervised_intervals = 0;
  std::uint64_t deadline_intervals = 0;
  std::uint64_t exception_intervals = 0;
  std::uint64_t skipped_intervals = 0;
  std::uint64_t quarantined_intervals = 0;
  std::uint64_t breaker_trips = 0;
  int max_shed_stage = 0;
  double max_block_load = 0.0;
  double load_seconds = 0.0;  // sum over blocks of load x block real time
  /// CPU-over-real-time averaged over all processed samples.
  [[nodiscard]] double MeanLoad() const;
};

class StreamingMonitor {
 public:
  struct Config {
    RFDumpPipeline::Config pipeline;
    /// Samples per processing block (default 250 ms at 8 Msps).
    std::size_t block_samples = 2'000'000;
    /// Overlap carried from the end of one block into the next, so frames
    /// that straddle the boundary are seen whole at least once. Must cover
    /// the longest frame (~19 ms => 152k samples; default 160k).
    std::size_t overlap_samples = 160'000;

    /// Analysis workers (core::Executor width, including the analyzer
    /// thread itself). 1 = fully serial monitor, the historical behaviour.
    /// >= 2 enables the pipelined mode described in the file comment.
    /// 0 is invalid here (Validate() throws): the monitor must not silently
    /// pick a width, the operator chooses (the CLI maps --threads 0 to the
    /// hardware concurrency before it reaches this config).
    int threads = 1;
    /// Bounded depth of the detect->analyze hand-off queue, in blocks
    /// (pipelined mode only). Push blocks when the queue is full; the stall
    /// is reported to the shed controller as overload. Must be >= 1.
    std::size_t max_queue_blocks = 2;

    /// Unified result sink (non-owning; see core/result_sink.hpp): decoded
    /// frames/packets, detections and per-block health all emit here, from
    /// one synchronised emission point. The legacy on_* callback members on
    /// the monitor still fire (back-compat shims through the same path) but
    /// are deprecated in favour of this.
    ResultSink* sink = nullptr;

    /// CPU-over-real-time budget per block. 0 disables load shedding.
    /// When a block's load exceeds the budget the monitor sheds one stage:
    ///   1: optional detectors off (freq/microwave/zigbee/collision)
    ///   2: + demodulation only for tags with confidence >= shed_min_confidence
    ///   3: + no demodulation at all (detection-only)
    double cpu_budget = 0.0;
    /// A stage is restored only after `shed_resume_blocks` consecutive
    /// blocks below `shed_resume_fraction * cpu_budget` (hysteresis).
    double shed_resume_fraction = 0.75;
    int shed_resume_blocks = 2;
    /// Dispatch-confidence floor applied at shed stage >= 2.
    float shed_min_confidence = 0.7f;

    /// Per-block health reports retained by health() (a ring: the oldest
    /// entry is dropped once the limit is reached, so a long-running monitor
    /// stays bounded; 0 keeps everything). Cumulative totals survive
    /// eviction via summary().
    std::size_t health_history_limit = 4096;

    /// Supervision layer (deadlines / containment / breakers / quarantine,
    /// DESIGN.md §9). The monitor always owns a Supervisor built from this
    /// config and wires it into the pipeline; the defaults leave deadlines
    /// unlimited, so supervision is containment-only unless limits are set.
    Supervisor::Config supervisor;

    /// Rejects configurations that used to misbehave silently. Throws
    /// std::invalid_argument on: overlap_samples >= block_samples (the
    /// block schedule would never advance), block_samples == 0, threads < 1,
    /// max_queue_blocks == 0, and negative budgets (cpu_budget or the
    /// supervisor's demod CPU limit). Both constructors call this.
    void Validate() const;
  };

  StreamingMonitor();
  explicit StreamingMonitor(Config config);
  ~StreamingMonitor();
  StreamingMonitor(const StreamingMonitor&) = delete;
  StreamingMonitor& operator=(const StreamingMonitor&) = delete;

  /// Feeds a segment assumed contiguous with the previous one (a front-end
  /// that never drops). Documented alias for
  /// `PushSegment(next_expected_timestamp, segment)`: the timestamp
  /// auto-advances past everything pushed so far (first call anchors the
  /// stream at 0), so there is exactly one ingest path and mixing Push with
  /// PushSegment is well-defined. May invoke sink/callbacks.
  void Push(dsp::const_sample_span segment);

  /// Feeds a timestamped segment: `start_sample` is the absolute stream
  /// position of segment[0]. A forward jump is a gap (samples lost): the
  /// buffered stream is processed to completion and detector state resets,
  /// so nothing is decoded across the gap. A backward jump is a duplicate
  /// delivery: the already-seen prefix is discarded. Non-finite samples are
  /// zeroed (and counted) on ingest.
  void PushSegment(std::int64_t start_sample, dsp::const_sample_span samples);

  /// Processes whatever is buffered, regardless of block size, and (in
  /// pipelined mode) drains the analyzer queue: after Flush() every result
  /// for pushed samples has been emitted and the accessors below are safe
  /// to read even with threads >= 2.
  void Flush();

  /// Legacy per-event callbacks (positions are absolute stream indices).
  /// Deprecated: thin shims kept for one release — they are invoked through
  /// the same single emission point as Config::sink, which also receives
  /// ZigBee frames (these callbacks never did). Prefer Config::sink.
  std::function<void(const phy80211::DecodedFrame&)> on_wifi_frame;
  std::function<void(const phybt::DecodedBtPacket&)> on_bt_packet;
  std::function<void(const Detection&)> on_detection;
  /// Called once per processed block with that block's health.
  std::function<void(const HealthReport&)> on_health;

  /// Aggregate stage costs across all processed blocks.
  const std::vector<StageCost>& costs() const { return costs_; }
  std::uint64_t samples_processed() const { return samples_processed_; }
  /// CPU/real-time ratio so far.
  [[nodiscard]] double CpuOverRealTime() const;

  /// One record per detected stream discontinuity.
  struct Gap {
    std::int64_t at = 0;       // first missing sample
    std::int64_t missing = 0;  // how many samples were lost
  };
  const std::vector<Gap>& gaps() const { return gaps_; }

  /// Per-block health history: the most recent blocks, bounded by
  /// Config::health_history_limit (ring semantics — older entries evicted).
  const std::deque<HealthReport>& health() const { return health_; }

  /// Exact cumulative health over ALL blocks ever processed (never evicted).
  const HealthSummary& summary() const { return summary_; }

  /// Current load-shedding stage (0 = full pipeline).
  [[nodiscard]] int shed_stage() const {
    return shed_stage_.load(std::memory_order_relaxed);
  }

  /// Adjusts the CPU budget at runtime (operator knob; 0 disables shedding
  /// and immediately restores the full pipeline). In pipelined mode, call
  /// only while quiescent (before the first Push or after a Flush).
  void set_cpu_budget(double budget);

  /// The supervision layer: breaker states, outcome counts, quarantine.
  const Supervisor& supervisor() const { return supervisor_; }
  Supervisor& supervisor() { return supervisor_; }

 private:
  /// One detected block handed from the ingest/detect thread to the
  /// analyzer (pipelined mode). Carries everything the analyzer needs so
  /// the two threads share no mutable monitor state: the sample copy, the
  /// detection output, the emission window, and the ingest tallies.
  struct BlockJob {
    dsp::SampleVec samples;
    DetectOutput det;
    std::int64_t base = 0;       // absolute index of samples[0]
    std::size_t take = 0;        // block length
    std::int64_t emit_from = 0;  // ownership window [emit_from, boundary)
    std::int64_t boundary = 0;
    bool gap_cut = false;
    int shed_stage = 0;          // stage the block was detected at
    double detect_seconds = 0.0;
    // Ingest tallies flushed into this block's HealthReport.
    std::uint32_t gap_count = 0;
    std::int64_t gap_samples = 0;
    std::int64_t overlap_samples = 0;
    std::uint64_t sanitized = 0;
  };

  [[nodiscard]] bool pipelined() const { return analyzer_.joinable(); }
  void ProcessBlock(bool final_block, bool gap_cut);
  /// Pipelined-mode block hand-off: detect on the calling thread, package a
  /// BlockJob, advance the ingest state, enqueue (blocking when full).
  void EnqueueBlock(bool final_block, bool gap_cut);
  void AnalyzerLoop();
  /// Analyzer-side half of a block: analysis fan-out, health, emission,
  /// shed-controller update.
  void AnalyzeBlock(BlockJob& job);
  /// Blocks until the analyzer queue is empty and the analyzer is idle.
  void DrainQueue();
  /// Serial-mode health emission: folds the pending ingest tallies into `h`
  /// and forwards to RecordHealth.
  void EmitHealth(HealthReport h);
  /// Summary/ring/metrics bookkeeping + health emission (tally-free; safe
  /// from the analyzer thread).
  void RecordHealth(const HealthReport& h);
  // The single emission point: Config::sink plus the legacy callback shims.
  void EmitWifi(const phy80211::DecodedFrame& f);
  void EmitBt(const phybt::DecodedBtPacket& p);
  void EmitZb(const phyzigbee::DecodedZbFrame& z);
  void EmitEvent(const ProtocolEvent& e);
  void EmitDetection(const Detection& d);
  void UpdateShedding(double block_load, bool deadline_pressure,
                      bool backpressure);
  void ApplyShedStage();
  [[nodiscard]] std::uint64_t AppendSanitized(dsp::const_sample_span samples);

  Config config_;
  /// Owned here (not in the pipeline) so breaker state and quarantine survive
  /// the pipeline reconstructions that shed-stage changes trigger.
  Supervisor supervisor_;
  Supervisor::Counts last_counts_;  // snapshot for per-block deltas
  RFDumpPipeline pipeline_;  // persists across blocks (reflects shed stage);
                             // owned by the ingest/detect thread
  dsp::SampleVec buffer_;
  std::int64_t buffer_start_ = 0;      // absolute index of buffer_[0]
  std::int64_t emitted_until_ = 0;     // results before this are already out
  std::int64_t expected_next_ = -1;    // next expected timestamp (-1: unset)
  std::uint64_t samples_processed_ = 0;
  std::vector<StageCost> costs_;
  std::vector<Gap> gaps_;
  std::deque<HealthReport> health_;
  HealthSummary summary_;

  // Ingest-side tallies flushed into the next HealthReport.
  std::uint32_t pending_gap_count_ = 0;
  std::int64_t pending_gap_samples_ = 0;
  std::int64_t pending_overlap_samples_ = 0;
  std::uint64_t pending_sanitized_ = 0;

  // Load-shedding controller state. The controller runs wherever block
  // bookkeeping runs (caller thread when serial, analyzer thread when
  // pipelined); shed_stage_ is atomic because the ingest thread reads it as
  // the rebuild target and accessors may poll it.
  std::atomic<int> shed_stage_{0};
  int under_budget_blocks_ = 0;
  int applied_shed_stage_ = 0;  // ingest-side: stage pipeline_ was built at

  // Pipelined mode (threads >= 2): analyzer thread + bounded job queue.
  std::unique_ptr<Executor> executor_;
  std::thread analyzer_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;        // signalled on push / stop
  std::condition_variable queue_space_cv_;  // signalled on pop / idle
  std::deque<BlockJob> queue_;
  bool stop_ = false;
  bool analyzer_busy_ = false;
  std::atomic<bool> backpressure_{false};  // ingest stalled since last block
};

}  // namespace rfdump::core
