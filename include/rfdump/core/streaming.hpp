#pragma once
// Streaming monitor: the real-time operating mode.
//
// The experiment pipelines process one recorded trace per call (the paper's
// evaluation mode). A live monitor instead receives the front-end stream in
// arbitrary-size segments and must emit results continuously while keeping
// up with the sample rate. StreamingMonitor wraps the RFDump pipeline in a
// block-based schedule: segments accumulate into fixed processing blocks
// with an overlap region, each block runs through detection + analysis, and
// results whose frames straddle a block boundary are deduplicated.
//
// This exploits exactly the latency tolerance the paper leans on (§2.2): a
// block of ~250 ms adds that much reporting delay but none to throughput.
//
// Fault tolerance (see DESIGN.md "Fault model and degradation policy"): the
// monitor consumes *timestamped* segments, so USB-overrun gaps and duplicate
// buffer deliveries are detected on ingest. A gap hard-splits the block
// schedule — the buffered samples are processed and detector state is reset,
// so no frame is ever decoded across missing samples. Non-finite input is
// zeroed before it can poison averages. Every block yields a HealthReport.
//
// Overload (CPU > real time) triggers graceful load shedding in the paper's
// own priority order: optional detectors first, then demodulation of
// low-confidence tags, then demodulation entirely (detection-only, the cheap
// mode of Fig 9). Hysteresis restores stages as load falls.

#include <cstdint>
#include <deque>
#include <functional>

#include "rfdump/core/pipeline.hpp"

namespace rfdump::core {

/// Highest shed stage: detection only, no demodulation.
inline constexpr int kShedStageMax = 3;

/// Cumulative health across every block a StreamingMonitor has processed.
/// Unlike the per-block history (which is a bounded ring), this never loses
/// information: a monitor that has run for a week still reports exact fault
/// totals.
struct HealthSummary {
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
  std::uint32_t gap_count = 0;
  std::int64_t gap_samples = 0;
  std::int64_t overlap_samples = 0;
  std::uint64_t sanitized_samples = 0;
  std::uint64_t tagged_detections = 0;
  std::uint64_t rejected_detections = 0;
  std::uint64_t forwarded_intervals = 0;
  // Supervision outcomes (DESIGN.md §9), cumulative across all blocks.
  std::uint64_t supervised_intervals = 0;
  std::uint64_t deadline_intervals = 0;
  std::uint64_t exception_intervals = 0;
  std::uint64_t skipped_intervals = 0;
  std::uint64_t quarantined_intervals = 0;
  std::uint64_t breaker_trips = 0;
  int max_shed_stage = 0;
  double max_block_load = 0.0;
  double load_seconds = 0.0;  // sum over blocks of load x block real time
  /// CPU-over-real-time averaged over all processed samples.
  [[nodiscard]] double MeanLoad() const;
};

class StreamingMonitor {
 public:
  struct Config {
    RFDumpPipeline::Config pipeline;
    /// Samples per processing block (default 250 ms at 8 Msps).
    std::size_t block_samples = 2'000'000;
    /// Overlap carried from the end of one block into the next, so frames
    /// that straddle the boundary are seen whole at least once. Must cover
    /// the longest frame (~19 ms => 152k samples; default 160k).
    std::size_t overlap_samples = 160'000;

    /// CPU-over-real-time budget per block. 0 disables load shedding.
    /// When a block's load exceeds the budget the monitor sheds one stage:
    ///   1: optional detectors off (freq/microwave/zigbee/collision)
    ///   2: + demodulation only for tags with confidence >= shed_min_confidence
    ///   3: + no demodulation at all (detection-only)
    double cpu_budget = 0.0;
    /// A stage is restored only after `shed_resume_blocks` consecutive
    /// blocks below `shed_resume_fraction * cpu_budget` (hysteresis).
    double shed_resume_fraction = 0.75;
    int shed_resume_blocks = 2;
    /// Dispatch-confidence floor applied at shed stage >= 2.
    float shed_min_confidence = 0.7f;

    /// Per-block health reports retained by health() (a ring: the oldest
    /// entry is dropped once the limit is reached, so a long-running monitor
    /// stays bounded; 0 keeps everything). Cumulative totals survive
    /// eviction via summary().
    std::size_t health_history_limit = 4096;

    /// Supervision layer (deadlines / containment / breakers / quarantine,
    /// DESIGN.md §9). The monitor always owns a Supervisor built from this
    /// config and wires it into the pipeline; the defaults leave deadlines
    /// unlimited, so supervision is containment-only unless limits are set.
    Supervisor::Config supervisor;
  };

  StreamingMonitor();
  explicit StreamingMonitor(Config config);

  /// Feeds a segment assumed contiguous with the previous one (a front-end
  /// that never drops). May invoke callbacks.
  void Push(dsp::const_sample_span segment);

  /// Feeds a timestamped segment: `start_sample` is the absolute stream
  /// position of segment[0]. A forward jump is a gap (samples lost): the
  /// buffered stream is processed to completion and detector state resets,
  /// so nothing is decoded across the gap. A backward jump is a duplicate
  /// delivery: the already-seen prefix is discarded. Non-finite samples are
  /// zeroed (and counted) on ingest.
  void PushSegment(std::int64_t start_sample, dsp::const_sample_span samples);

  /// Processes whatever is buffered, regardless of block size.
  void Flush();

  /// Called for every decoded 802.11 frame / Bluetooth packet / detection.
  /// Positions are absolute stream sample indices.
  std::function<void(const phy80211::DecodedFrame&)> on_wifi_frame;
  std::function<void(const phybt::DecodedBtPacket&)> on_bt_packet;
  std::function<void(const Detection&)> on_detection;
  /// Called once per processed block with that block's health.
  std::function<void(const HealthReport&)> on_health;

  /// Aggregate stage costs across all processed blocks.
  const std::vector<StageCost>& costs() const { return costs_; }
  std::uint64_t samples_processed() const { return samples_processed_; }
  /// CPU/real-time ratio so far.
  [[nodiscard]] double CpuOverRealTime() const;

  /// One record per detected stream discontinuity.
  struct Gap {
    std::int64_t at = 0;       // first missing sample
    std::int64_t missing = 0;  // how many samples were lost
  };
  const std::vector<Gap>& gaps() const { return gaps_; }

  /// Per-block health history: the most recent blocks, bounded by
  /// Config::health_history_limit (ring semantics — older entries evicted).
  const std::deque<HealthReport>& health() const { return health_; }

  /// Exact cumulative health over ALL blocks ever processed (never evicted).
  const HealthSummary& summary() const { return summary_; }

  /// Current load-shedding stage (0 = full pipeline).
  [[nodiscard]] int shed_stage() const { return shed_stage_; }

  /// Adjusts the CPU budget at runtime (operator knob; 0 disables shedding
  /// and immediately restores the full pipeline).
  void set_cpu_budget(double budget);

  /// The supervision layer: breaker states, outcome counts, quarantine.
  const Supervisor& supervisor() const { return supervisor_; }
  Supervisor& supervisor() { return supervisor_; }

 private:
  void ProcessBlock(bool final_block, bool gap_cut);
  void EmitHealth(HealthReport h);
  void UpdateShedding(double block_load, bool deadline_pressure);
  void ApplyShedStage();
  [[nodiscard]] std::uint64_t AppendSanitized(dsp::const_sample_span samples);

  Config config_;
  /// Owned here (not in the pipeline) so breaker state and quarantine survive
  /// the pipeline reconstructions that shed-stage changes trigger.
  Supervisor supervisor_;
  Supervisor::Counts last_counts_;  // snapshot for per-block deltas
  RFDumpPipeline pipeline_;  // persists across blocks (reflects shed stage)
  dsp::SampleVec buffer_;
  std::int64_t buffer_start_ = 0;      // absolute index of buffer_[0]
  std::int64_t emitted_until_ = 0;     // results before this are already out
  std::int64_t expected_next_ = -1;    // next expected timestamp (-1: unset)
  std::uint64_t samples_processed_ = 0;
  std::vector<StageCost> costs_;
  std::vector<Gap> gaps_;
  std::deque<HealthReport> health_;
  HealthSummary summary_;

  // Ingest-side tallies flushed into the next HealthReport.
  std::uint32_t pending_gap_count_ = 0;
  std::int64_t pending_gap_samples_ = 0;
  std::int64_t pending_overlap_samples_ = 0;
  std::uint64_t pending_sanitized_ = 0;

  // Load-shedding controller state.
  int shed_stage_ = 0;
  int under_budget_blocks_ = 0;
};

}  // namespace rfdump::core
