#pragma once
// Streaming monitor: the real-time operating mode.
//
// The experiment pipelines process one recorded trace per call (the paper's
// evaluation mode). A live monitor instead receives the front-end stream in
// arbitrary-size segments and must emit results continuously while keeping
// up with the sample rate. StreamingMonitor wraps the RFDump pipeline in a
// block-based schedule: segments accumulate into fixed processing blocks
// with an overlap region, each block runs through detection + analysis, and
// results whose frames straddle a block boundary are deduplicated.
//
// This exploits exactly the latency tolerance the paper leans on (§2.2): a
// block of ~250 ms adds that much reporting delay but none to throughput.

#include <cstdint>
#include <functional>

#include "rfdump/core/pipeline.hpp"

namespace rfdump::core {

class StreamingMonitor {
 public:
  struct Config {
    RFDumpPipeline::Config pipeline;
    /// Samples per processing block (default 250 ms at 8 Msps).
    std::size_t block_samples = 2'000'000;
    /// Overlap carried from the end of one block into the next, so frames
    /// that straddle the boundary are seen whole at least once. Must cover
    /// the longest frame (~19 ms => 152k samples; default 160k).
    std::size_t overlap_samples = 160'000;
  };

  StreamingMonitor();
  explicit StreamingMonitor(Config config);

  /// Feeds a segment of the sample stream (any size). May invoke callbacks.
  void Push(dsp::const_sample_span segment);

  /// Processes whatever is buffered, regardless of block size.
  void Flush();

  /// Called for every decoded 802.11 frame / Bluetooth packet / detection.
  /// Positions are absolute stream sample indices.
  std::function<void(const phy80211::DecodedFrame&)> on_wifi_frame;
  std::function<void(const phybt::DecodedBtPacket&)> on_bt_packet;
  std::function<void(const Detection&)> on_detection;

  /// Aggregate stage costs across all processed blocks.
  const std::vector<StageCost>& costs() const { return costs_; }
  std::uint64_t samples_processed() const { return samples_processed_; }
  /// CPU/real-time ratio so far.
  [[nodiscard]] double CpuOverRealTime() const;

 private:
  void ProcessBlock(bool final_block);

  Config config_;
  dsp::SampleVec buffer_;
  std::int64_t buffer_start_ = 0;      // absolute index of buffer_[0]
  std::int64_t emitted_until_ = 0;     // results before this are already out
  std::uint64_t samples_processed_ = 0;
  std::vector<StageCost> costs_;
};

}  // namespace rfdump::core
