#pragma once
// Supervision layer for the analysis stage (DESIGN.md §9).
//
// RFDump's bargain (paper §2.2) is that detectors may be sloppy because the
// expensive analysis stage cleans up after them — which only holds if one
// pathological dispatched interval cannot take the whole monitor down. The
// Supervisor wraps every demodulator invocation in a stage boundary that
//   1. arms a cooperative deadline (util::WorkBudget) so a runaway decode
//      aborts as Outcome::kDeadline instead of stalling the block,
//   2. catches every exception and converts it into a per-interval failure
//      (Outcome::kException) — the monitor never dies on one bad input,
//   3. tracks a per-protocol circuit breaker: a protocol whose recent window
//      of intervals keeps failing trips open, is skipped (Outcome::kSkipped)
//      for an exponentially backed-off number of blocks, then re-admits one
//      half-open probe and closes on success,
//   4. quarantines failed intervals (stream position, protocol, outcome,
//      sample snapshot) in a bounded ring so operators can replay exactly
//      the input that broke a decoder (rfdump_cli --quarantine DIR).
//
// Every decision is counted both into the rfdump_supervisor_* metrics and
// into Counts (registry-independent; works with RFDUMP_OBS=OFF), which the
// streaming monitor deltas into per-block HealthReports.
//
// Concurrency: Supervise() may be called from multiple analysis workers
// concurrently — breaker, quarantine and counter state are mutex-protected,
// and the supervised closure itself runs outside the lock. The parallel
// analysis path (core::Executor, DESIGN.md §10) uses the split form of the
// same boundary: Admit() on the driver thread in dispatch order (so breaker
// decisions are deterministic for a given stream), the units run on workers
// charging the shared Admission budget, and Finish() closes the boundary
// exactly once when the last unit completes. Supervise() is implemented on
// top of Admit()/Finish() and keeps its exact historical semantics.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rfdump/core/protocols.hpp"
#include "rfdump/dsp/types.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::core {

/// How one supervised analysis invocation ended.
enum class Outcome : std::uint8_t {
  kOk = 0,
  kDeadline,   // WorkBudget expired; partial results were kept
  kException,  // the detector/demodulator threw; interval abandoned
  kSkipped,    // circuit breaker open: the interval was never attempted
};

[[nodiscard]] const char* OutcomeName(Outcome o);

/// Circuit-breaker state for one protocol (DESIGN.md §9 state machine).
enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* BreakerStateName(BreakerState s);

class Supervisor {
 public:
  struct Config {
    /// Per-invocation caps armed on every supervised analysis call.
    /// Defaults are unlimited (deadlines opt-in): batch experiments must
    /// reproduce the paper bit-for-bit regardless of host speed.
    util::WorkBudget::Limits demod_limits;

    /// Breaker: trip when >= `breaker_trip_failures` of the most recent
    /// `breaker_window` invocations of a protocol failed.
    int breaker_window = 8;
    int breaker_trip_failures = 4;
    /// Open duration in blocks: `breaker_cooldown_blocks << (trips - 1)`,
    /// capped at `breaker_max_cooldown_blocks` (exponential backoff; a
    /// successful half-open probe resets the trip count).
    int breaker_cooldown_blocks = 2;
    int breaker_max_cooldown_blocks = 64;

    /// Quarantine ring capacity (oldest evicted) and per-record snapshot cap
    /// (leading samples of the failed interval).
    std::size_t quarantine_capacity = 16;
    std::size_t quarantine_snapshot_samples = 65'536;

    /// Test-only fault injection: invoked inside the stage boundary, before
    /// the real analysis, with (protocol, absolute start sample, budget).
    /// Throwing simulates a crashing demodulator; spinning the budget down
    /// (`while (b.Charge(n)) {}`) simulates one that blows its deadline.
    std::function<void(Protocol, std::int64_t, util::WorkBudget&)> fault_hook;
  };

  /// One failed interval, replayable offline.
  struct QuarantineRecord {
    Protocol protocol = Protocol::kUnknown;
    Outcome outcome = Outcome::kOk;
    std::int64_t start_sample = 0;  // absolute stream position
    std::int64_t end_sample = 0;
    std::string error;              // exception what() (empty for deadlines)
    dsp::SampleVec snapshot;        // leading samples of the interval
  };

  /// Registry-independent totals (monotonic; snapshot under the lock).
  struct Counts {
    std::uint64_t invocations = 0;
    std::uint64_t ok = 0;
    std::uint64_t deadline = 0;
    std::uint64_t exception = 0;
    std::uint64_t skipped = 0;
    std::uint64_t detector_exceptions = 0;  // contained detector throws
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_closes = 0;
    std::uint64_t quarantined = 0;
    /// WorkBudget accounting summed over finished invocations — the
    /// supervision-overhead bench prices deadline checks with these.
    std::uint64_t budget_checks = 0;
    std::uint64_t budget_charged = 0;
  };

  /// Supervision context for one dispatched interval, shared by every
  /// analysis unit of that interval (e.g. the 8 per-channel Bluetooth
  /// demodulations). Produced by Admit(), closed by Finish().
  struct Admission {
    Protocol protocol = Protocol::kUnknown;
    std::int64_t start = 0;  // relative to the current stream offset
    std::int64_t end = 0;
    /// True: run the unit(s), then call Finish() exactly once. False: the
    /// boundary is already fully accounted (breaker skip, or the fault hook
    /// threw) — `outcome` holds the result and Finish() must NOT be called.
    bool admitted = false;
    bool is_probe = false;  // half-open probe; resolved by Finish()
    Outcome outcome = Outcome::kOk;
    /// Deadline budget shared by all units of the interval. WorkBudget is
    /// safe to Charge() from concurrent units.
    util::WorkBudget budget;
  };

  Supervisor();
  explicit Supervisor(Config config);
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Opens the stage boundary for one interval: invocation accounting,
  /// breaker check (skip if open), budget arm and fault-hook injection.
  /// Thread-safe, but callers that need deterministic breaker behaviour
  /// must Admit() intervals in dispatch order from one thread.
  /// shared_ptr because the Admission (its WorkBudget holds atomics and
  /// cannot move) outlives the call in every parallel unit's closure.
  [[nodiscard]] std::shared_ptr<Admission> Admit(
      Protocol p, std::int64_t start, std::int64_t end,
      dsp::const_sample_span interval);

  /// Closes the boundary: budget/outcome accounting, breaker window note
  /// (trip/close), quarantine on failure. Call exactly once per admitted
  /// Admission, from any thread, after every unit has completed. `outcome`
  /// is the combined unit result (any throw => kException with `error`
  /// from the first failing unit in submission order, else expired budget
  /// => kDeadline, else kOk); `interval` feeds the quarantine snapshot.
  Outcome Finish(Admission& admission, Outcome outcome, std::string error,
                 dsp::const_sample_span interval);

  /// Runs `fn` under the stage boundary: breaker check, armed budget,
  /// exception containment, outcome accounting, quarantine on failure.
  /// `start`/`end` are interval positions relative to the current stream
  /// offset (set_stream_offset); `interval` is the dispatched sample range
  /// (snapshot source). `fn` receives the armed budget to wire into the
  /// demodulator config.
  Outcome Supervise(Protocol p, std::int64_t start, std::int64_t end,
                    dsp::const_sample_span interval,
                    const std::function<void(util::WorkBudget&)>& fn);

  /// Exception containment for cheap detector calls (no budget, no breaker):
  /// a throwing detector loses its tags for this chunk, nothing else.
  /// Returns false if `fn` threw.
  template <typename F>
  bool Contain(const char* stage, F&& fn) {
    try {
      fn();
      return true;
    } catch (const std::exception& e) {
      NoteDetectorThrow(stage, e.what());
    } catch (...) {
      NoteDetectorThrow(stage, "non-std exception");
    }
    return false;
  }

  /// Advances breaker cooldowns by one block (open -> half-open at zero).
  /// The streaming monitor calls this once per processed block.
  void OnBlockEnd();

  /// Absolute stream position of sample 0 of the span the pipeline is
  /// currently processing; quarantine records and the fault hook see
  /// absolute positions. Safe to set between blocks.
  void set_stream_offset(std::int64_t offset) {
    stream_offset_.store(offset, std::memory_order_relaxed);
  }

  [[nodiscard]] BreakerState breaker_state(Protocol p) const;
  /// Breakers currently not closed (open or half-open).
  [[nodiscard]] int open_breakers() const;
  [[nodiscard]] Counts counts() const;
  /// Snapshot of the quarantine ring, oldest first.
  [[nodiscard]] std::vector<QuarantineRecord> quarantine() const;
  const Config& config() const { return config_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    std::deque<bool> window;      // recent invocations: true = failure
    int window_failures = 0;
    int cooldown_blocks_left = 0;
    int trips_since_close = 0;    // exponent for the backoff schedule
    bool probe_in_flight = false;
  };

  void NoteDetectorThrow(const char* stage, const char* what);
  void RecordFailure(Protocol p, Outcome outcome, std::int64_t start,
                     std::int64_t end, dsp::const_sample_span interval,
                     std::string error);
  /// Window bookkeeping + trip decision. Caller holds mu_.
  void NoteResultLocked(Breaker& b, Protocol p, bool failure, bool was_probe);
  void TripLocked(Breaker& b, Protocol p);
  [[nodiscard]] int open_breakers_locked() const;

  Config config_;
  std::atomic<std::int64_t> stream_offset_{0};
  mutable std::mutex mu_;
  std::vector<Breaker> breakers_;  // indexed by Protocol, kProtocolCount wide
  std::deque<QuarantineRecord> quarantine_;
  Counts counts_;
};

}  // namespace rfdump::core
