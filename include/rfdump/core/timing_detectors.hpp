#pragma once
// Timing-based protocol-specific detectors (paper §3.2/§4.4). These consume
// only peak metadata — never raw samples — which is what makes them cheap and
// what lets every new protocol reuse the single protocol-agnostic peak
// detector's work.

#include <cstdint>
#include <deque>
#include <vector>

#include "rfdump/core/detections.hpp"
#include "rfdump/core/peaks.hpp"

namespace rfdump::core {

/// 802.11 timing detector: tags peak pairs separated by SIFS (10 us +/- d) —
/// a data frame and its MAC ACK — and peaks separated by DIFS + k x SlotTime
/// for k in [0, CW] (contention). Both peaks of a matching pair are tagged.
class WifiTimingDetector {
 public:
  struct Config {
    double sifs_us = 10.0;
    double difs_us = 50.0;
    double slot_us = 20.0;
    int max_backoff = 64;          // CW bound (paper uses 64)
    double tolerance_us = 3.0;     // +/- delta on SIFS and on each DIFS+k*ST
  };

  WifiTimingDetector();
  explicit WifiTimingDetector(Config config);

  /// Feeds newly completed peaks (in order); returns new detections.
  std::vector<Detection> OnPeaks(std::span<const Peak> peaks);

 private:
  Config config_;
  bool have_prev_ = false;
  Peak prev_{};
};

/// Bluetooth timing detector: a peak whose start lies an integer number of
/// 625 us slots after the start of a recent Bluetooth-candidate peak is
/// tagged. A small cache of active "sessions" (slot-aligned transmitters) is
/// checked before the full history search; cache entries carry hit counters
/// that drive confidence and eviction (paper §4.4).
class BluetoothTimingDetector {
 public:
  struct Config {
    double slot_us = 625.0;
    double tolerance_us = 4.0;
    /// Maximum slot distance searched. With only 8 of 79 hop channels
    /// visible, consecutive *visible* packets of one session are ~100 slots
    /// apart on average, so the bound must be generous or every visibility
    /// gap restarts the session (inflating the miss floor).
    int max_slots = 400;
    std::size_t history = 128;     // recent peak starts searched
    std::size_t cache_size = 4;    // active-session cache entries
    /// Bluetooth bursts are at most 5 slots (DH5 ~2.9 ms); longer peaks are
    /// never Bluetooth.
    double max_burst_us = 3000.0;
    double min_burst_us = 80.0;    // shortest real packet (ID/NULL ~126 us)
  };

  BluetoothTimingDetector();
  explicit BluetoothTimingDetector(Config config);

  std::vector<Detection> OnPeaks(std::span<const Peak> peaks);

  /// Cache hit statistics (for the cache ablation).
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t history_searches() const { return history_searches_; }

 private:
  struct CacheEntry {
    std::int64_t anchor_start = 0;  // start sample of the session anchor peak
    int hits = 0;
  };

  bool SlotAligned(std::int64_t delta_samples) const;

  Config config_;
  std::deque<std::int64_t> recent_starts_;
  std::vector<CacheEntry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t history_searches_ = 0;
};

/// Microwave-oven timing detector: peaks recurring at the AC period
/// (16.67 ms) with long on-times and near-constant power across peaks.
class MicrowaveTimingDetector {
 public:
  struct Config {
    double period_us = 16667.0;    // 60 Hz mains
    double tolerance_us = 400.0;
    double min_burst_us = 3000.0;  // ovens are on for milliseconds at a time
    float power_ratio_tolerance = 0.5f;  // peak-to-peak mean power agreement
  };

  MicrowaveTimingDetector();
  explicit MicrowaveTimingDetector(Config config);

  std::vector<Detection> OnPeaks(std::span<const Peak> peaks);

 private:
  Config config_;
  bool have_prev_ = false;
  Peak prev_{};
  int run_ = 0;  // consecutive period-aligned bursts
};

/// ZigBee (802.15.4) timing detector: gaps of SIFS (192 us), LIFS (640 us) or
/// multiples of the 320 us backoff slot.
class ZigbeeTimingDetector {
 public:
  struct Config {
    double sifs_us = 192.0;
    double lifs_us = 640.0;
    double slot_us = 320.0;
    int max_slots = 16;
    double tolerance_us = 8.0;
  };

  ZigbeeTimingDetector();
  explicit ZigbeeTimingDetector(Config config);

  std::vector<Detection> OnPeaks(std::span<const Peak> peaks);

 private:
  Config config_;
  bool have_prev_ = false;
  Peak prev_{};
};

}  // namespace rfdump::core
