#pragma once
// Accuracy scoring against emulator ground truth — the paper's metrics
// (§5.1): packet miss rate (missed / ground-truth packets; packets the early
// detectors miss are never monitored at all) and false-positive sample rate
// (samples forwarded to demodulators that belong to no real transmission,
// divided by trace length).

#include <cstdint>
#include <string>
#include <vector>

#include "rfdump/core/detections.hpp"
#include "rfdump/emu/ether.hpp"

namespace rfdump::core {

struct AccuracyScore {
  std::size_t truth_packets = 0;
  std::size_t missed = 0;
  std::int64_t false_positive_samples = 0;
  std::int64_t forwarded_samples = 0;

  [[nodiscard]] double MissRate() const {
    return truth_packets == 0
               ? 0.0
               : static_cast<double>(missed) /
                     static_cast<double>(truth_packets);
  }
  [[nodiscard]] double FalsePositiveRate(std::int64_t total_samples) const {
    return total_samples == 0 ? 0.0
                              : static_cast<double>(false_positive_samples) /
                                    static_cast<double>(total_samples);
  }
};

/// Scores raw detections against ground truth for one protocol.
///
/// A truth packet counts as found if merged detections of its protocol cover
/// at least `min_overlap` of its samples. False-positive samples are detected
/// samples overlapping no visible truth record of ANY protocol. If
/// `detector_filter` is non-empty, only detections whose detector name equals
/// it are considered (to score e.g. the SIFS-timing curve separately from the
/// phase curve).
[[nodiscard]] AccuracyScore ScoreDetections(
    const std::vector<emu::TruthRecord>& truth, Protocol protocol,
    const std::vector<Detection>& detections, std::int64_t total_samples,
    const std::string& detector_filter = {}, double min_overlap = 0.5);

/// Convenience: truth packets for `protocol` that are visible and end before
/// `total_samples`.
[[nodiscard]] std::vector<emu::TruthRecord> VisibleTruthWithin(
    const std::vector<emu::TruthRecord>& truth, Protocol protocol,
    std::int64_t total_samples);

}  // namespace rfdump::core
