#pragma once
// Phase-based protocol-specific detectors (paper §3.3/§4.5).
//
// The protocol-agnostic computation is one arctan per sample: instantaneous
// phase, its first derivative (frequency offset => channel) and second
// derivative (zero for continuous-phase GFSK). Protocol-specific checks are
// cheap functions of these:
//  * GFSK (Bluetooth): d2(phase) ~ 0 over the burst; d1 gives the channel.
//  * DBPSK/Barker (802.11b): the 11:8 chip-to-sample ratio yields a fixed
//    per-symbol pattern of phase flips; a precomputed 8-sample pattern is
//    correlated against the received phase-change stream — the same trick
//    the paper borrowed from the BBN ADROIT decoder.
//  * PSK order classification via a phase-change histogram (Figure 4).

#include <array>
#include <cstdint>
#include <optional>

#include "rfdump/core/detections.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/dsp/types.hpp"

namespace rfdump::core {

/// Protocol-agnostic phase statistics of (a prefix of) a burst.
struct PhaseInfo {
  float mean_d1 = 0.0f;       // mean phase step per sample (radians)
  float mean_abs_d2 = 0.0f;   // mean |second difference|
  float frac_small_d2 = 0.0f; // fraction of samples with |d2| < 0.25 rad
  std::size_t samples_used = 0;
};

/// Computes phase statistics over up to `max_samples` samples of `x`,
/// optionally smoothing with a boxcar of `smooth` samples first (narrowband
/// signals benefit; 0/1 = no smoothing).
[[nodiscard]] PhaseInfo ComputePhaseInfo(dsp::const_sample_span x,
                                         std::size_t max_samples = 2048,
                                         std::size_t smooth = 1);

/// GFSK / Bluetooth phase detector.
class GfskPhaseDetector {
 public:
  struct Config {
    float min_frac_small_d2 = 0.75f;  // continuous-phase fraction required
    float max_mean_abs_d2 = 0.22f;    // radians
    std::size_t max_samples = 1024;
    std::size_t smooth = 4;           // boxcar vs full-band noise
    double max_burst_us = 3000.0;     // DH5 bound, like the timing detector
  };

  GfskPhaseDetector();
  explicit GfskPhaseDetector(Config config);

  /// Checks one peak; `samples` is the peak's sample range.
  [[nodiscard]] std::optional<Detection> OnPeak(const Peak& peak,
                                                dsp::const_sample_span samples);

  /// Visible-channel index [0, 8) implied by the last accepted peak's
  /// frequency offset (-1 if none yet).
  int last_channel() const { return last_channel_; }

 private:
  Config config_;
  int last_channel_ = -1;
};

/// 802.11b DBPSK/Barker phase-pattern detector.
///
/// Scans the burst in windows of `window_symbols` and tags the prefix that
/// matches the Barker chipping pattern. A 1/2 Mbps frame matches end to end
/// (Barker spreading covers the whole frame); a CCK (5.5/11 Mbps) frame only
/// matches through its 1 Mbps PLCP preamble + header, so just that prefix is
/// forwarded — the selectivity behaviour the paper's Table 4 measures.
class DbpskPhaseDetector {
 public:
  struct Config {
    float threshold = 0.45f;        // normalized pattern correlation
    std::size_t window_symbols = 16;  // prefix-scan window (16 us)
    /// Scan cap: if the pattern still matches after this much of the burst,
    /// the whole peak is tagged without examining the rest.
    std::size_t max_scan_symbols = 512;
    /// Sampling optimization (paper 3.1, unimplemented there): during the
    /// prefix scan, examine only every k-th window. Cuts phase-detection cost
    /// ~k x for long bursts at the price of k-window boundary resolution.
    std::size_t scan_stride_windows = 1;
  };

  DbpskPhaseDetector();
  explicit DbpskPhaseDetector(Config config);

  [[nodiscard]] std::optional<Detection> OnPeak(const Peak& peak,
                                                dsp::const_sample_span samples);

  /// Correlation score of the first window of the last OnPeak call.
  float last_score() const { return last_score_; }

 private:
  /// Best pattern-correlation over the 8 alignments of one window.
  [[nodiscard]] float WindowScore(dsp::const_sample_span window) const;

  Config config_;
  float last_score_ = 0.0f;
};

/// Expected per-sample phase-flip pattern (+1 keep / -1 flip; 0 for the
/// data-dependent symbol-boundary slot) of Barker-11 chipping observed at
/// 8 Msps. Exposed for tests.
[[nodiscard]] std::array<float, 8> BarkerPhaseFlipPattern();

/// Classifies the PSK order of a burst from the phase-change histogram:
/// returns 2 (BPSK-like: two opposite phase-change clusters), 4 (QPSK-like)
/// or 0 (neither). `sps` is samples per symbol.
[[nodiscard]] int ClassifyPskOrder(dsp::const_sample_span x, std::size_t sps,
                                   std::size_t max_symbols = 256);

}  // namespace rfdump::core
