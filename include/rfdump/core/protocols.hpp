#pragma once
// Protocol feature registry — the machine-readable form of the paper's
// Table 2: timing, modulation and channelization features of the wireless
// technologies in the 2.4 GHz ISM band that the detectors key on.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rfdump::core {

/// Identity of a technology the monitor can classify.
enum class Protocol : std::uint8_t {
  kUnknown = 0,
  kWifi80211b,   // DSSS/Barker + CCK
  kBluetooth,    // GFSK, FHSS
  kZigbee,       // 802.15.4 O-QPSK
  kMicrowave,    // residential microwave oven interference
  kBleAdv,       // BLE advertising (1 Mbps GFSK, channels 37/38/39)
};

/// Number of Protocol enumerators (dense, starting at kUnknown = 0) — sizes
/// per-protocol state tables (dispatch counters, supervisor breakers).
/// The value is still a compile-time constant (wire validation and state
/// arrays need one), but ProtocolRegistry::CheckConsistency() verifies at
/// first use that every registered bundle fits and that the registered ids
/// are dense up to this count, so a new bundle cannot silently desync it.
inline constexpr std::size_t kProtocolCount = 6;

/// Display name of a protocol. Derived from the bundle registry
/// (core/protocol_registry.hpp); "unknown" for kUnknown, "?" for a protocol
/// id with no registered bundle.
[[nodiscard]] const char* ProtocolName(Protocol p);

/// Modulation family, as distinguishable by the phase detectors.
enum class Modulation : std::uint8_t {
  kDbpsk,
  kDqpsk,
  kCck,
  kGfsk,
  kOqpsk,
  kNoise,  // unmodulated / swept interference
};

[[nodiscard]] const char* ModulationName(Modulation m);

/// One row of the feature table.
struct ProtocolFeatures {
  Protocol protocol;
  std::string variant;        // e.g. "802.11b (1 Mbps)"
  double slot_time_us;        // MAC slot (0 if none)
  double sifs_us;             // short IFS / TDD slot spacing (0 if none)
  Modulation modulation;
  std::string spreading;      // "Barker", "CCK", "FHSS", "DSSS-32", "-"
  double channel_width_mhz;
  double symbol_rate_hz;      // 0 if not applicable
};

/// The full feature table (Table 2 of the paper, plus the microwave row).
[[nodiscard]] std::span<const ProtocolFeatures> FeatureTable();

/// Rows for one protocol.
[[nodiscard]] std::vector<ProtocolFeatures> FeaturesFor(Protocol p);

}  // namespace rfdump::core
