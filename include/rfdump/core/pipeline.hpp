#pragma once
// The three monitoring architectures evaluated in the paper (§2, §5.2):
//
//  * NaivePipeline            — Figure 1: every sample goes to every
//                               demodulator (1 x 802.11 + 8 x Bluetooth).
//  * NaivePipeline + energy   — an energy gate before all demodulators.
//  * RFDumpPipeline           — Figure 2: protocol-agnostic peak detection,
//                               cheap protocol-specific detectors on metadata,
//                               demodulators only on tagged sample ranges.
//
// Each pipeline reports what it found plus a per-stage CPU cost breakdown,
// which is what the Table 1 / Figure 9 benches print.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rfdump/core/collision.hpp"
#include "rfdump/core/detections.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/protocol_registry.hpp"
#include "rfdump/core/supervisor.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phybt/demodulator.hpp"
#include "rfdump/phyzigbee/phy.hpp"

namespace rfdump::core {

class Executor;    // core/executor.hpp — analysis-stage execution engine
class ResultSink;  // core/result_sink.hpp — unified result emission

/// Cost of one pipeline stage over a Process() call.
struct StageCost {
  std::string name;
  double cpu_seconds = 0.0;
  std::uint64_t samples_in = 0;
};

/// Front-end / processing health for one block of stream. Produced once per
/// RFDumpPipeline::Process call (input-quality fields) and once per
/// StreamingMonitor block (all fields). A real front-end produces overruns,
/// saturation and corrupt buffers as a matter of course; the monitor must
/// account for them rather than silently decode garbage.
struct HealthReport {
  std::int64_t block_start = 0;        // absolute stream index of the block
  std::uint64_t block_samples = 0;
  std::uint32_t gap_count = 0;         // stream discontinuities since the
  std::int64_t gap_samples = 0;        //   previous report, and samples lost
  std::int64_t overlap_samples = 0;    // duplicated input discarded on ingest
  std::uint64_t sanitized_samples = 0; // non-finite samples zeroed on ingest
  std::uint64_t nonfinite_samples = 0; // non-finite samples that reached the
                                       //   pipeline (0 once sanitized)
  double saturation_fraction = 0.0;    // fraction of samples at the ADC rail
  int shed_stage = 0;                  // 0 = full pipeline .. 3 = detect-only
  double block_load = 0.0;             // CPU/real-time for this block
  // Dispatch decisions for this block (all protocols; the per-protocol
  // split lives in the obs metrics registry, DESIGN.md §8):
  std::uint64_t tagged_detections = 0;    // passed the confidence floor
  std::uint64_t rejected_detections = 0;  // below the confidence floor
  std::uint64_t forwarded_intervals = 0;  // merged intervals sent to analysis
  // Supervision outcomes for this block (filled by the streaming monitor
  // from Supervisor::counts() deltas; see DESIGN.md §9):
  std::uint64_t supervised_intervals = 0;  // analysis invocations attempted
  std::uint64_t deadline_intervals = 0;    // aborted on WorkBudget expiry
  std::uint64_t exception_intervals = 0;   // demodulator threw (contained)
  std::uint64_t skipped_intervals = 0;     // circuit breaker open
  std::uint64_t quarantined_intervals = 0; // failures recorded for replay
  std::uint32_t breaker_trips = 0;         // breakers tripped this block
  int open_breakers = 0;                   // breakers not closed at block end
};

/// Everything a pipeline produced for one capture.
struct MonitorReport {
  std::vector<Detection> detections;   // raw detector output (RFDump only)
  std::vector<Detection> dispatched;   // merged intervals sent to analysis
  /// Legacy per-protocol decode vectors. Kept as thin shims over the generic
  /// `events` collection below: bundles with rich typed results still fill
  /// them (and existing tests/sinks compile unchanged), and the pipeline
  /// derives `events` from them after analysis. Bundles without a typed
  /// vector (e.g. BLE advertising) appear only in `events`.
  std::vector<phy80211::DecodedFrame> wifi_frames;
  std::vector<phybt::DecodedBtPacket> bt_packets;
  std::vector<phyzigbee::DecodedZbFrame> zb_frames;
  /// Generic protocol-tagged decode events, grouped by protocol id in
  /// registry order; within a protocol, in the same order as its typed
  /// vector. This is the view the generic layers (oracle, differential,
  /// net fusion, ResultSink::OnEvent) consume.
  std::vector<ProtocolEvent> events;
  std::vector<StageCost> costs;
  std::vector<HealthReport> health;    // input-quality scan(s), see above
  std::uint64_t samples_total = 0;

  /// Sum of all stage costs in CPU seconds.
  [[nodiscard]] double TotalCpuSeconds() const;
  /// Sum of stages whose name starts with `prefix`.
  [[nodiscard]] double CostOf(const std::string& prefix) const;
  /// CPU time / real time of the capture (the paper's efficiency metric).
  [[nodiscard]] double CpuOverRealTime() const;
};

/// Shared demodulator bank configuration.
struct AnalysisConfig {
  bool demodulate = true;      // false: detection only (Fig 9 "no demod")
  bool wifi_demod = true;
  bool zigbee_demod = false;   // decode 802.15.4 frames in tagged ranges
  int bt_demods = 8;           // one per visible Bluetooth channel
  std::uint8_t bt_uap = 0x47;  // UAP known to the monitor (see DESIGN.md)
  /// Registry bundles whose intervals the analysis stage will demodulate
  /// (bit = BundleBit(protocol)). Defaults to all-on: the detect stage's
  /// bundle mask already decides which protocols get tagged and dispatched,
  /// so analysis follows detection unless a bundle is disabled here too.
  std::uint32_t bundle_mask = 0xFFFFFFFFu;
  /// Detections below this confidence are still reported but not dispatched
  /// to demodulators. 0 dispatches everything; the streaming monitor's
  /// load-shedding controller raises it under overload (paper §2.2: when the
  /// monitor cannot keep up, demodulate the confident tags first).
  float min_dispatch_confidence = 0.0f;
};

/// Product of a pipeline's detection stages (health scan, peak detection,
/// protocol detectors, dispatch): everything up to — but not including —
/// demodulation, plus the parameters the analysis stage needs. The split
/// exists so the streaming monitor can run detection of block N+1 while
/// block N is still in analysis (DESIGN.md §10); Process() is simply
/// AnalyzeDetections(Detect(x), x, ...).
struct DetectOutput {
  /// detections / dispatched / health and the detect-stage costs are
  /// filled; the analysis result vectors are still empty.
  MonitorReport report;
  /// Snapshot of the analysis parameters at detection time (the streaming
  /// monitor's shed controller may reconfigure the pipeline between blocks,
  /// so the block analyzed later must use the config it was detected with).
  AnalysisConfig analysis;
  double noise_floor_power = 1.0;
  Supervisor* supervisor = nullptr;  // non-owning, may be null
};

/// Runs the demodulator bank over `det.report.dispatched` and returns the
/// completed report. `x` must be the same span Detect() saw. A null or
/// serial `executor` reproduces the historical single-threaded analysis
/// byte-for-byte; a parallel executor fans each interval x protocol
/// demodulation out as independent tasks and merges result slots in
/// submission order, so the result-bearing report fields are identical to
/// the serial run. `sink`, when set, receives every report entry (health
/// first, then detections/frames/packets) after analysis completes.
[[nodiscard]] MonitorReport AnalyzeDetections(DetectOutput det,
                                              dsp::const_sample_span x,
                                              Executor* executor = nullptr,
                                              ResultSink* sink = nullptr);

/// RFDump architecture (Figure 2).
class RFDumpPipeline {
 public:
  struct Config {
    bool timing_detectors = true;   // 802.11 SIFS/DIFS + BT slot timing
    bool phase_detectors = true;    // DBPSK pattern + GFSK
    bool freq_detector = false;     // FFT-based BT detector (off by default,
                                    // like the paper's prototype)
    bool microwave_detector = false;
    bool zigbee_detector = false;
    /// Collision detection (paper future work): flags peaks whose power
    /// profile steps mid-burst as overlapping transmissions.
    bool collision_detector = false;
    /// Registry bundles whose detectors run and whose detections are
    /// dispatched (bit = BundleBit(protocol)). Defaults to the registry's
    /// default-enabled set — the historical four protocols; non-default
    /// bundles (e.g. BLE advertising) are opted in via EnableBundle().
    std::uint32_t bundle_mask = DefaultBundleMask();
    double noise_floor_power = 1.0;
    double dispatch_pad_us = 40.0;  // padding around dispatched intervals
    /// Input health scan: count non-finite samples and samples at the ADC
    /// rail before detection, reported via MonitorReport::health.
    bool health_scan = true;
    /// |I| or |Q| at or above ~this amplitude counts as saturated (matches
    /// the emulator's default ADC full scale). 0 disables the check.
    float saturation_amplitude = 64.0f;
    AnalysisConfig analysis;
    /// Supervision layer (non-owning; DESIGN.md §9). When set, every
    /// detector call is exception-contained and every dispatched interval's
    /// analysis runs under a stage boundary: armed WorkBudget deadline,
    /// throw containment, per-protocol circuit breaker, quarantine. Null
    /// (the batch-experiment default) preserves unsupervised semantics. The
    /// streaming monitor always wires its own supervisor here.
    Supervisor* supervisor = nullptr;
    /// Analysis-stage execution engine (non-owning; DESIGN.md §10). Null or
    /// Executor(1): serial inline analysis, the historical behaviour. A
    /// wider executor parallelises demodulation with a deterministic
    /// ordered merge — result-bearing report fields are bit-identical.
    Executor* executor = nullptr;
    /// Optional live consumer: Process() emits every report entry into the
    /// sink after analysis (non-owning; see core/result_sink.hpp).
    ResultSink* sink = nullptr;

    /// Enables one registry bundle: sets its bundle_mask bit and — for the
    /// historical protocols that predate the mask — the matching legacy
    /// detector/demod booleans, so either switch form stays consistent.
    void EnableBundle(Protocol p);
  };

  RFDumpPipeline();
  explicit RFDumpPipeline(Config config);

  /// Processes a full capture (one-shot batch over a recorded trace, the
  /// paper's experimental mode). Equivalent to
  /// AnalyzeDetections(Detect(x), x, config().executor, config().sink).
  [[nodiscard]] MonitorReport Process(dsp::const_sample_span x);

  /// Detection stages only (no demodulation); feed the result to
  /// AnalyzeDetections(). Stateless across calls, so one thread may Detect
  /// block N+1 while another analyzes block N.
  [[nodiscard]] DetectOutput Detect(dsp::const_sample_span x);

  const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Naive architecture (Figure 1), optionally with the energy-detection gate.
class NaivePipeline {
 public:
  struct Config {
    bool energy_gate = false;   // true: "naive with energy detection"
    /// Registry bundles this naive monitor hosts: every naive_member bundle
    /// in the mask gets a full-span interval (pure naive) or per-peak
    /// intervals (energy gate). Same bit layout as RFDumpPipeline's mask.
    std::uint32_t bundle_mask = DefaultBundleMask();
    double noise_floor_power = 1.0;
    double dispatch_pad_us = 40.0;
    AnalysisConfig analysis;

    /// Same contract as RFDumpPipeline::Config::EnableBundle.
    void EnableBundle(Protocol p) { bundle_mask |= BundleBit(p); }
    /// Same contract as RFDumpPipeline::Config::supervisor.
    Supervisor* supervisor = nullptr;
    /// Same contracts as RFDumpPipeline::Config::{executor, sink}.
    Executor* executor = nullptr;
    ResultSink* sink = nullptr;
  };

  NaivePipeline();
  explicit NaivePipeline(Config config);

  [[nodiscard]] MonitorReport Process(dsp::const_sample_span x);

  /// Detection/gating stages only; same contract as RFDumpPipeline::Detect.
  [[nodiscard]] DetectOutput Detect(dsp::const_sample_span x);

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace rfdump::core
