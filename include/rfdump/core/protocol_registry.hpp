#pragma once
// Self-registering protocol bundle registry — the single seam every
// protocol-generic layer enumerates instead of hand-listing PHY families.
//
// A ProtocolBundle packages everything the monitor needs to host one
// protocol: its feature-table rows (paper Table 2), a detector factory for
// the cheap Detect() stage, an analysis plan + demodulator entry for the
// expensive AnalyzeDetections() stage, scenario-DSL traffic hooks, oracle
// scoring membership, differential-harness membership, and a fuzz entry
// point. Bundles self-register from their translation unit at static-init
// time (see src/core/bundles/); the pipeline fan-out, result sinks, the
// scenario DSL, the oracle, the four-architecture differential harness and
// the fuzz corpus runner all discover protocols by enumerating the registry,
// so adding a protocol is one new bundle TU — no edits to those layers.
// DESIGN.md §15 documents the contract.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "rfdump/core/detections.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/protocols.hpp"
#include "rfdump/dsp/types.hpp"

namespace rfdump::emu {
class Ether;
}  // namespace rfdump::emu

namespace rfdump::util {
class WorkBudget;
class Xoshiro256;
}  // namespace rfdump::util

namespace rfdump::core {

struct AnalysisConfig;   // pipeline.hpp
struct MonitorReport;    // pipeline.hpp

/// Generic protocol-tagged decode event — the registry-era replacement for
/// MonitorReport's per-protocol frame vectors. The typed vectors remain as
/// thin legacy shims; every generic layer (sinks, oracle, differential, net
/// fusion) consumes this view instead.
struct ProtocolEvent {
  Protocol protocol = Protocol::kUnknown;
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;          // one past the last sample
  int channel = -1;                     // protocol channel index, -1 if n/a
  bool crc_ok = false;                  // frame check (FCS/CRC/HEC) passed
  std::vector<std::uint8_t> payload;    // decoded payload / PDU bytes
};

/// Pipeline-level switches handed to a bundle's detector factory. Each
/// bundle gates its own hooks on the relevant switches (e.g. the ZigBee
/// bundle returns no hooks unless zigbee_detector is set), which keeps the
/// pipeline free of per-protocol conditionals.
struct DetectorSetup {
  bool timing_detectors = true;
  bool phase_detectors = true;
  bool freq_detector = false;
  bool microwave_detector = false;
  bool zigbee_detector = false;
  double noise_floor_power = 1.0;
};

/// Detector hooks for one protocol, created fresh per Detect() call (the
/// underlying detectors are stateful across chunks within one call). Any
/// hook may be empty. Stage names feed Supervisor::Contain fault isolation.
struct ProtocolDetectors {
  /// Batch hook over freshly completed peaks (timing-feature detectors).
  std::function<std::vector<Detection>(std::span<const Peak>)> on_peaks;
  const char* peaks_stage = "detect/timing";
  /// Per-peak hook over the peak's clamped sample range (phase detectors).
  std::function<std::optional<Detection>(const Peak&, dsp::const_sample_span)>
      on_peak;
  const char* peak_stage = "detect/phase";
  /// Per-chunk hook (frequency-domain detectors) plus end-of-capture flush.
  std::function<std::vector<Detection>(dsp::const_sample_span, std::int64_t)>
      on_chunk;
  std::function<std::vector<Detection>()> chunk_flush;
};

/// How the analysis stage fans an interval tagged with this protocol out
/// into supervised task units.
struct AnalysisPlan {
  /// Number of independent demodulation units per interval. Negative means
  /// the interval is skipped entirely (no supervision boundary is opened).
  int units = -1;
  /// Stop launching units once the interval's work budget has expired
  /// (multi-channel scans charge the shared budget per channel).
  bool check_budget = false;
  /// Cost-ledger / trace stage name, e.g. "analysis/bt-demod".
  const char* stage = nullptr;
};

/// Inputs to one analysis unit. `span` is the dispatched interval rebased to
/// offset 0; decode results must be rebased by `start_sample` before commit.
struct AnalysisUnitContext {
  dsp::const_sample_span span;
  std::int64_t start_sample = 0;
  const AnalysisConfig* analysis = nullptr;
  double noise_floor_power = 1.0;
  util::WorkBudget* budget = nullptr;
};

/// Deferred result application: run_unit executes on a worker thread and
/// returns a commit closure; the pipeline invokes commits single-threaded in
/// deterministic submission order, which is what keeps parallel analysis
/// bit-identical to serial.
using AnalysisCommit = std::function<void(MonitorReport&)>;

/// Everything one protocol contributes to the monitor. All hooks are
/// optional; a bundle that only wants feature-table membership registers
/// with every std::function empty.
struct ProtocolBundle {
  Protocol protocol = Protocol::kUnknown;
  /// Display name (ProtocolName() derives from this), e.g. "802.11b".
  const char* name = "";
  /// CLI token for --protocols, e.g. "wifi".
  const char* cli_name = "";
  /// Feature-table rows (paper Table 2) contributed by this protocol.
  std::vector<ProtocolFeatures> features;

  /// Member of the default bundle mask (DefaultBundleMask()).
  bool default_enabled = true;
  /// Naive architectures demodulate this protocol over the full capture
  /// (and tag its intervals from the energy gate).
  bool naive_member = false;
  /// The four-architecture differential harness enables this protocol on
  /// every architecture and diffs its decode events across them.
  bool differential_member = false;
  /// The conformance oracle scores precision/recall for this protocol.
  bool oracle_scored = false;
  /// Order of this bundle's detector hooks within Detect() (ascending).
  /// Distinct from the protocol id so the historical detector call order is
  /// preserved exactly (microwave timing runs before zigbee timing).
  int detect_rank = 0;

  /// Detector factory for the cheap Detect() stage.
  std::function<ProtocolDetectors(const DetectorSetup&)> make_detectors;
  /// Fan-out shape of the analysis stage for this protocol's intervals.
  std::function<AnalysisPlan(const AnalysisConfig&)> analysis_plan;
  /// One demodulation unit (invoked units times per interval).
  std::function<AnalysisCommit(const AnalysisUnitContext&, int unit)> run_unit;
  /// Converts this protocol's legacy typed MonitorReport vector into generic
  /// events. Empty for bundles whose run_unit commits ProtocolEvents
  /// natively.
  std::function<void(const MonitorReport&, std::vector<ProtocolEvent>&)>
      collect_events;

  /// Scenario-DSL hook: this protocol's traffic op in the canned mixed
  /// scenario. Receives the ether, the op's start sample and the builder's
  /// SNR offset; returns the end sample of the generated session. Empty =
  /// not part of the canned mix.
  std::function<std::int64_t(emu::Ether&, std::int64_t, double)>
      canned_traffic;
  /// Fixed start sample for the canned op; negative = auto-stagger.
  std::int64_t canned_at = -1;

  /// Fuzz entry point. fuzz_run receives the whole input (first byte is the
  /// mode selector by convention) and returns the number of successful
  /// decodes. Null fuzz_name = no fuzz target.
  const char* fuzz_name = nullptr;
  /// Corpus directory name under tests/corpus/, e.g. "phyble_adv".
  const char* fuzz_corpus_dir = nullptr;
  std::function<int(std::span<const std::uint8_t>, util::WorkBudget*)>
      fuzz_run;
  /// Generates the i-th seed-corpus input (deterministic given rng state).
  std::function<std::vector<std::uint8_t>(std::size_t, util::Xoshiro256&)>
      fuzz_seed_input;
};

static_assert(kProtocolCount <= 32,
              "bundle masks are 32-bit; widen them before adding protocol 33");

/// Bit for one protocol in a bundle mask.
[[nodiscard]] constexpr std::uint32_t BundleBit(Protocol p) {
  return 1u << static_cast<unsigned>(p);
}

/// Process-wide bundle registry. Bundles register during static
/// initialization (single-threaded, before main); enumeration happens at
/// run time, after all registrations.
class ProtocolRegistry {
 public:
  static ProtocolRegistry& Instance();

  /// Registers a bundle. Rejects (returns false, registry unchanged) a
  /// bundle whose protocol id, display name or CLI name collides with an
  /// already-registered bundle, or whose protocol id is kUnknown or outside
  /// [1, kProtocolCount).
  bool Register(ProtocolBundle bundle);

  /// All bundles in ascending protocol-id order — deterministic regardless
  /// of translation-unit registration order.
  [[nodiscard]] std::span<const ProtocolBundle> bundles() const;

  /// Bundle for one protocol, or nullptr.
  [[nodiscard]] const ProtocolBundle* Find(Protocol p) const;

  /// Bundle whose cli_name matches, or nullptr.
  [[nodiscard]] const ProtocolBundle* FindCli(std::string_view cli_name) const;

  /// Mask of default-enabled bundles.
  [[nodiscard]] std::uint32_t DefaultMask() const;

  /// Startup consistency check: registered ids are dense in
  /// [1, kProtocolCount), names are unique and non-empty, and each feature
  /// row is tagged with its bundle's protocol. Throws std::logic_error on
  /// desync (a bundle added without bumping kProtocolCount, or vice versa).
  void CheckConsistency() const;

 private:
  ProtocolRegistry() = default;
  std::vector<ProtocolBundle> bundles_;
};

/// Convenience: mask of default-enabled bundles.
[[nodiscard]] std::uint32_t DefaultBundleMask();

/// Registration helper for bundle TUs:
///   static const bool registered =
///       RegisterProtocolBundle(MakeWifiBundle());
[[nodiscard]] bool RegisterProtocolBundle(ProtocolBundle bundle);

}  // namespace rfdump::core
