#pragma once
// core::Executor — the analysis-stage execution engine (DESIGN.md §10).
//
// The paper's whole economic argument (§2, Fig 9) is that cheap detection
// buys enough headroom to run many expensive demodulators; the demodulator
// bank itself (1 x 802.11 + 8 x per-channel Bluetooth) is embarrassingly
// parallel across dispatched intervals. The Executor turns that into wall
// clock: a fixed-width work-stealing thread pool over which the pipelines
// fan out per-interval analysis tasks, with a serial inline mode that is the
// default and is byte-for-byte the pre-parallel behavior.
//
// Width semantics: Executor(N) means N analysis workers total — N-1 pool
// threads plus the caller, which joins the work inside Batch::Wait()
// (help-while-wait). Executor(1) therefore spawns no threads at all and
// every Batch::Run() executes inline at the call site, in submission order.
//
// Scheduling: each pool thread owns a deque; submissions are distributed
// round-robin; an idle worker first drains its own deque (FIFO) and then
// steals from its siblings. Tasks must not block on other tasks — the
// pipelines only submit leaf demodulation units, so a waiting thread that
// "helps" can never deadlock.
//
// Determinism contract: the Executor guarantees only that every task
// submitted to a Batch has completed when Wait() returns, and that the
// first task exception is rethrown there. Callers that need deterministic
// output (the pipelines' ordered merge) give each task its own result slot
// and combine the slots in submission order after Wait().

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rfdump::core {

class Executor {
 public:
  /// Hard cap on the pool width (far above any sane front-end host).
  static constexpr int kMaxThreads = 64;

  /// `threads` is the total worker count including the caller: 1 (default)
  /// is serial inline, N > 1 spawns N-1 pool threads. 0 resolves to the
  /// hardware concurrency. Clamped to [1, kMaxThreads].
  explicit Executor(int threads = 1);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Effective total width (pool threads + the helping caller), >= 1.
  [[nodiscard]] int threads() const noexcept { return threads_; }
  /// True when Batch::Run executes inline (threads() == 1).
  [[nodiscard]] bool serial() const noexcept { return pool_.empty(); }

  /// One joinable group of tasks. Destruction waits for completion; Wait()
  /// additionally rethrows the first task exception (remaining tasks still
  /// ran — a failing task never cancels its siblings).
  class Batch {
   public:
    /// A null or serial executor gives an inline batch.
    explicit Batch(Executor* ex);
    ~Batch();
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    /// Submits one task. Inline batches run it immediately at this call.
    void Run(std::function<void()> fn);

    /// Blocks until every submitted task has completed, helping to drain
    /// the pool while waiting, then rethrows the first stored exception.
    void Wait();

   private:
    friend class Executor;
    struct State;
    Executor* ex_ = nullptr;
    std::shared_ptr<State> state_;       // null for inline batches
    std::exception_ptr inline_error_;    // first exception, inline mode
    bool waited_ = false;
  };

 private:
  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Batch::State> batch;
    double enqueued_at = 0.0;  // Stopwatch::NowSeconds at submission
  };

  /// One pool thread's deque (owner pops front, thieves steal back).
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(std::size_t index);
  void Enqueue(Task task);
  bool TryPop(std::size_t preferred, Task& out);
  void RunTask(Task& task);

  int threads_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> pool_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool shutdown_ = false;
  std::uint64_t next_queue_ = 0;  // round-robin submission cursor
};

}  // namespace rfdump::core
