#pragma once
// Shared fuzz input/output conventions (DESIGN.md §11).
//
// Every fuzz target — the per-protocol entries that bundles register in the
// ProtocolRegistry and the net-frame target in testing — interprets corpus
// bytes the same way: the first byte selects a sub-mode, the rest is the
// payload, decoded either as raw descrambled bits (one bit per byte, LSB) or
// as interleaved signed I/Q bytes at 1/64 full scale. These helpers live at
// the core layer so bundle translation units can use them; the historical
// testing:: entry points (MutateInput) forward here unchanged.

#include <cstdint>
#include <span>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/rng.hpp"

namespace rfdump::core {

/// Payload bytes -> descrambled bit vector (one bit per byte, LSB).
[[nodiscard]] std::vector<std::uint8_t> FuzzBytesToBits(
    std::span<const std::uint8_t> data);

/// Sample-count cap for byte-derived IQ inputs, so a single input stays
/// sub-second even through a multi-channel GFSK scan.
inline constexpr std::size_t kMaxFuzzSamples = 1u << 16;

/// Payload bytes -> IQ samples: consecutive byte pairs are signed I/Q at
/// 1/64 full scale, so the corpus reaches both sub-noise and clipping-range
/// amplitudes.
[[nodiscard]] dsp::SampleVec FuzzBytesToSamples(
    std::span<const std::uint8_t> data);

/// IQ samples -> corpus bytes (inverse of FuzzBytesToSamples, saturating).
void FuzzAppendSamples(std::vector<std::uint8_t>& out, dsp::const_sample_span x,
                       std::size_t max_samples);

/// Applies one seeded mutation (bit flip, byte splat, truncate, duplicate,
/// insert, chunk swap) in place. Deterministic given the RNG state.
void FuzzMutateInput(std::vector<std::uint8_t>& data, util::Xoshiro256& rng);

/// FNV-1a 64-bit hash — names corpus and repro files content-addressably.
[[nodiscard]] std::uint64_t FuzzFnv1a(std::span<const std::uint8_t> data);

}  // namespace rfdump::core
