#pragma once
// core::ResultSink — the unified result-emission API (DESIGN.md §10).
//
// The streaming monitor used to expose four independent std::function
// callbacks (wifi / bt / detection / health); the batch pipelines exposed
// none and returned everything in a MonitorReport. Parallelising the
// analysis stage forces a single synchronised emission point anyway — the
// ordered merge hands results to exactly one consumer, in stream order — so
// that point becomes an interface both operating modes share:
//
//  * StreamingMonitor::Config::sink receives results continuously, block by
//    block, in absolute stream coordinates. The legacy on_* callback
//    members still work (they are shims routed through an internal
//    FunctionSink) but are deprecated and will be removed next release.
//  * RFDumpPipeline / NaivePipeline invoke an optional sink as Process()
//    emits into the MonitorReport, so a live consumer can observe a batch
//    run without waiting for the report.
//
// Threading contract: emitters serialise all calls — a sink never sees two
// concurrent invocations, regardless of --threads, and events for one block
// arrive in stream order (health first, then frames/packets/detections).
// Sink implementations therefore need no locking of their own.

#include <functional>
#include <utility>
#include <vector>

#include "rfdump/core/pipeline.hpp"

namespace rfdump::core {

/// Receives monitoring results as they are produced. Default implementations
/// ignore everything, so a sink overrides only the events it wants.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// A decoded 802.11 frame. Positions are absolute stream sample indices.
  virtual void OnWifiFrame(const phy80211::DecodedFrame& frame) {
    (void)frame;
  }
  /// A decoded Bluetooth baseband packet.
  virtual void OnBtPacket(const phybt::DecodedBtPacket& packet) {
    (void)packet;
  }
  /// A decoded 802.15.4 (ZigBee) frame.
  virtual void OnZbFrame(const phyzigbee::DecodedZbFrame& frame) {
    (void)frame;
  }
  /// A generic protocol-tagged decode event (MonitorReport::events entry).
  /// Emitted for every decode, after the typed OnWifiFrame/OnBtPacket/
  /// OnZbFrame calls for the block; protocols without a typed vector (e.g.
  /// BLE advertising) are only visible here. Protocol-generic consumers
  /// should override this instead of the typed trio.
  virtual void OnEvent(const ProtocolEvent& event) { (void)event; }
  /// A raw detector tag (pre-dispatch).
  virtual void OnDetection(const Detection& detection) { (void)detection; }
  /// Block health (streaming: once per block; batch: once per health scan).
  virtual void OnHealth(const HealthReport& report) { (void)report; }
};

/// ResultSink assembled from per-event std::function slots; unset slots drop
/// their events. This is the back-compat bridge for the old callback quartet.
class FunctionSink final : public ResultSink {
 public:
  std::function<void(const phy80211::DecodedFrame&)> on_wifi_frame;
  std::function<void(const phybt::DecodedBtPacket&)> on_bt_packet;
  std::function<void(const phyzigbee::DecodedZbFrame&)> on_zb_frame;
  std::function<void(const ProtocolEvent&)> on_event;
  std::function<void(const Detection&)> on_detection;
  std::function<void(const HealthReport&)> on_health;

  void OnWifiFrame(const phy80211::DecodedFrame& frame) override {
    if (on_wifi_frame) on_wifi_frame(frame);
  }
  void OnBtPacket(const phybt::DecodedBtPacket& packet) override {
    if (on_bt_packet) on_bt_packet(packet);
  }
  void OnZbFrame(const phyzigbee::DecodedZbFrame& frame) override {
    if (on_zb_frame) on_zb_frame(frame);
  }
  void OnEvent(const ProtocolEvent& event) override {
    if (on_event) on_event(event);
  }
  void OnDetection(const Detection& detection) override {
    if (on_detection) on_detection(detection);
  }
  void OnHealth(const HealthReport& report) override {
    if (on_health) on_health(report);
  }
};

/// ResultSink that accumulates everything it receives — the test/tooling
/// workhorse for comparing a streamed emission against a batch report.
class CollectingSink final : public ResultSink {
 public:
  std::vector<phy80211::DecodedFrame> wifi_frames;
  std::vector<phybt::DecodedBtPacket> bt_packets;
  std::vector<phyzigbee::DecodedZbFrame> zb_frames;
  std::vector<ProtocolEvent> events;
  std::vector<Detection> detections;
  std::vector<HealthReport> health;

  void OnWifiFrame(const phy80211::DecodedFrame& frame) override {
    wifi_frames.push_back(frame);
  }
  void OnBtPacket(const phybt::DecodedBtPacket& packet) override {
    bt_packets.push_back(packet);
  }
  void OnZbFrame(const phyzigbee::DecodedZbFrame& frame) override {
    zb_frames.push_back(frame);
  }
  void OnEvent(const ProtocolEvent& event) override {
    events.push_back(event);
  }
  void OnDetection(const Detection& detection) override {
    detections.push_back(detection);
  }
  void OnHealth(const HealthReport& report) override {
    health.push_back(report);
  }
};

}  // namespace rfdump::core
