#pragma once
// Frequency-domain Bluetooth detector (paper §3.4/§4.6): per-chunk FFT,
// energy folded into 8 x 1 MHz bins; a burst whose energy is concentrated in
// a single bin is a Bluetooth candidate. A start/end state machine tracks
// burst extents per channel.

#include <array>
#include <cstdint>
#include <vector>

#include "rfdump/core/detections.hpp"
#include "rfdump/dsp/fft.hpp"

namespace rfdump::core {

class BluetoothFreqDetector {
 public:
  struct Config {
    std::size_t fft_size = 256;
    std::size_t bins = 8;               // 1 MHz each across the 8 MHz band
    float dominance = 0.55f;            // fraction of energy in the top bin
    double min_power_over_floor = 2.5;  // linear; chunk must be this x floor
    double noise_floor_power = 1.0;
  };

  BluetoothFreqDetector();
  explicit BluetoothFreqDetector(Config config);

  /// Feeds one chunk; returns a detection when a single-channel burst *ends*.
  [[nodiscard]] std::vector<Detection> PushChunk(dsp::const_sample_span chunk,
                                                 std::int64_t start_sample);

  /// Flush any burst still open at end of stream.
  [[nodiscard]] std::vector<Detection> Flush();

  /// Channel of the most recent detection.
  int last_channel() const { return last_channel_; }

 private:
  struct OpenBurst {
    bool active = false;
    std::int64_t start = 0;
    std::int64_t last_end = 0;
    int channel = 0;
    int chunks = 0;
  };

  Config config_;
  dsp::FftPlan plan_;
  std::vector<float> window_;
  OpenBurst open_;
  int last_channel_ = -1;
};

}  // namespace rfdump::core
