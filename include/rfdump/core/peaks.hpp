#pragma once
// Protocol-agnostic peak detection with integrated energy filtering — the
// first stage of the RFDump detection pipeline (paper §4.2/§4.3).
//
// The sample stream is processed in 200-sample (25 us) chunks. For each chunk
// the detector first checks the average energy of the trailing window; only
// if that exceeds the gate (noise floor + 4 dB) is the chunk examined
// sample-by-sample with a 20-sample (2.5 us) moving average to find precise
// peak boundaries (refined with an instantaneous-magnitude threshold). The
// result is per-chunk metadata plus a shared history of recent peaks that all
// protocol-specific detectors reuse.

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "rfdump/dsp/energy.hpp"
#include "rfdump/dsp/types.hpp"

namespace rfdump::core {

/// Fixed chunk size: 200 samples = 25 us at 8 Msps.
inline constexpr std::size_t kChunkSamples = 200;
/// Energy averaging window: 20 samples = 2.5 us (half of the shortest timing
/// feature we must resolve, the 10 us SIFS).
inline constexpr std::size_t kAveragingWindow = 20;
/// Energy gate: 4 dB above the noise floor.
inline constexpr double kEnergyGateDb = 4.0;

/// One detected RF transmission (a "peak").
struct Peak {
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;    // one past the last sample
  float mean_power = 0.0f;        // average power over the peak
  float peak_power = 0.0f;        // maximum windowed power seen

  [[nodiscard]] std::int64_t length() const {
    return end_sample - start_sample;
  }
};

/// Per-chunk metadata handed to the protocol-specific detectors: aggregate
/// information plus (via PeakDetector) access to the shared peak history.
struct ChunkMeta {
  std::int64_t start_sample = 0;
  std::size_t n_samples = 0;
  float window_power = 0.0f;   // trailing-window average power
  bool gated_out = false;      // failed the energy gate, skipped
  std::uint32_t peaks_completed = 0;  // peaks that ended in this chunk
};

/// Streaming peak detector.
class PeakDetector {
 public:
  struct Config {
    double noise_floor_power = 1.0;  // known noise power (emulator default)
    double gate_db = kEnergyGateDb;
    std::size_t averaging_window = kAveragingWindow;
    /// Peaks separated by less than this many samples are merged (prevents
    /// noise from splitting one packet into several peaks).
    std::size_t merge_gap_samples = 8;
    /// Instantaneous |x|^2 threshold factor (relative to gate) used to refine
    /// the peak start position.
    double instant_factor = 0.5;
    std::size_t history_capacity = 4096;
  };

  PeakDetector();
  explicit PeakDetector(Config config);

  /// Processes one chunk beginning at absolute sample `start_sample`.
  /// Chunks must be fed in order. Returns the chunk's metadata.
  ChunkMeta PushChunk(dsp::const_sample_span chunk, std::int64_t start_sample);

  /// Same, with the chunk's power plane (FinitePower per sample) already
  /// computed — the block pipeline computes it once per chunk and shares it.
  /// `power.size()` must equal `chunk.size()`.
  ChunkMeta PushChunk(dsp::const_sample_span chunk,
                      std::span<const float> power, std::int64_t start_sample);

  /// Flushes any open peak at end of stream.
  void Flush();

  /// Completed peaks in chronological order (bounded ring; oldest evicted).
  const std::deque<Peak>& history() const { return history_; }

  /// Completed peaks whose index is >= `from` in completion order; use
  /// CompletedCount() to track a cursor across PushChunk calls.
  [[nodiscard]] std::uint64_t CompletedCount() const { return completed_; }
  [[nodiscard]] std::vector<Peak> CompletedSince(std::uint64_t cursor) const;

  const Config& config() const { return config_; }

  /// Linear power threshold of the energy gate.
  [[nodiscard]] double GatePower() const;

 private:
  void ProcessSamples(std::span<const float> power, std::int64_t start);
  void ClosePeak(std::int64_t end);

  Config config_;
  dsp::MovingAveragePower avg_;
  bool in_peak_ = false;
  Peak open_peak_;
  double open_power_sum_ = 0.0;
  std::int64_t below_since_ = -1;  // first sample the average fell below gate
  std::int64_t last_strong_ = -1;  // last sample clearly above the gate
  std::int64_t last_sample_ = 0;   // last absolute sample index processed
  std::deque<Peak> history_;
  std::uint64_t completed_ = 0;
  std::vector<float> plane_;  // reusable per-chunk power plane
};

}  // namespace rfdump::core
