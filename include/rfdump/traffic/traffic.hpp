#pragma once
// Workload generators reproducing the paper's evaluation traffic (§5.1):
//
//  * 802.11b unicast ping sessions (ICMP echo + MAC ACKs, SIFS-spaced),
//  * 802.11b broadcast floods (DIFS + k x SlotTime spacing),
//  * Bluetooth l2ping sessions (DH5 packets whose sizes encode sequence
//    numbers, TDD slots, 79-channel hopping with 8 channels visible),
//  * AP beacons, multi-rate "campus" background traffic, microwave ovens and
//    ZigBee sensor chatter for the real-world trace.
//
// All generators are deterministic given the Ether's RNG seed, place bursts
// sample-accurately, and record ground truth through the Ether.

#include <cstdint>

#include "rfdump/emu/ether.hpp"
#include "rfdump/phy80211/plcp.hpp"
#include "rfdump/phybt/packet.hpp"

namespace rfdump::traffic {

/// Common result: where the generated activity ended.
struct SessionResult {
  std::int64_t end_sample = 0;
  std::size_t packets = 0;  // ground-truth packets emitted (incl. ACKs)
};

// ------------------------------------------------------------------ 802.11

struct WifiPingConfig {
  phy80211::Rate rate = phy80211::Rate::k1Mbps;
  std::size_t count = 250;          // echo requests (each generates 4 frames)
  std::size_t icmp_payload = 464;   // ICMP data bytes -> 500-byte frame body
  double interval_us = 10000.0;     // request-to-request spacing
  double snr_db = 25.0;
  double snr_jitter_db = 0.0;       // uniform +/- jitter per packet
  std::uint32_t flow_id = 1;
};

/// Unicast ping: for each echo, DATA(req) --SIFS-- ACK --turnaround--
/// DATA(rep) --SIFS-- ACK. The Figure 6 microbenchmark.
SessionResult GenerateUnicastPing(emu::Ether& ether, const WifiPingConfig& cfg,
                                  std::int64_t start_sample);

struct WifiBroadcastConfig {
  phy80211::Rate rate = phy80211::Rate::k1Mbps;
  std::size_t count = 4000;
  std::size_t icmp_payload = 464;
  int max_backoff_slots = 31;     // k drawn uniformly from [0, max]
  double snr_db = 25.0;
  double snr_jitter_db = 0.0;
  std::uint32_t flow_id = 2;
};

/// Broadcast flood: packets separated by DIFS + k x SlotTime. Figure 7.
SessionResult GenerateBroadcastFlood(emu::Ether& ether,
                                     const WifiBroadcastConfig& cfg,
                                     std::int64_t start_sample);

struct BeaconConfig {
  std::size_t count = 10;
  double snr_db = 20.0;
  std::uint32_t flow_id = 3;
};

/// AP beacons at the standard 102.4 ms interval, 1 Mbps.
SessionResult GenerateBeacons(emu::Ether& ether, const BeaconConfig& cfg,
                              std::int64_t start_sample);

// ---------------------------------------------------------------- Bluetooth

struct L2PingConfig {
  phybt::DeviceAddress address{0x2A96EF, 0x47};
  std::size_t count = 1000;        // ping request/response pairs
  double snr_db = 25.0;
  double snr_jitter_db = 0.0;
  std::uint32_t clk_start = 0;
  std::uint32_t flow_id = 10;
};

/// Bluetooth l2ping: master DH5 request then slave DH5 response in TDD slots,
/// hopping every slot pair. Packet sizes encode the sequence number
/// (225 + seq % 115 bytes), as in the paper's ground-truthing (§5.1.1).
/// Invisible hops are recorded in ground truth with visible = false.
SessionResult GenerateL2Ping(emu::Ether& ether, const L2PingConfig& cfg,
                             std::int64_t start_sample);

/// Size used for l2ping sequence `seq` (recoverable from a sniffed packet).
[[nodiscard]] std::size_t L2PingSizeForSeq(std::uint64_t seq);

// -------------------------------------------------------------------- other

struct MicrowaveConfig {
  double snr_db = 30.0;
  std::uint32_t flow_id = 20;
};

/// Microwave oven radiating for [start, start+duration). Each AC on-phase
/// burst becomes one ground-truth record.
SessionResult GenerateMicrowave(emu::Ether& ether, const MicrowaveConfig& cfg,
                                std::int64_t start_sample,
                                std::int64_t duration_samples);

struct CampusConfig {
  double duration_sec = 1.0;
  double snr_db = 22.0;
  double snr_jitter_db = 5.0;
  /// Probability weights of the payload rate of each unicast exchange
  /// (1 / 2 / 5.5 / 11 Mbps). The default skews to CCK rates like the
  /// paper's campus trace, where only 106 of 646 packets were 1 Mbps.
  double rate_weights[4] = {0.05, 0.08, 0.25, 0.62};
  double mean_idle_us = 2500.0;  // exponential idle between exchanges
  bool include_bluetooth = true;
  bool include_microwave = false;
  std::uint32_t flow_id = 40;
};

/// "Real-world" campus trace (paper §5.3): beacons, small broadcasts (ARPs),
/// and unicast DATA+ACK exchanges at mixed 802.11b rates, optionally with
/// Bluetooth chatter and a microwave oven. Every 802.11 frame still carries a
/// PLCP preamble+header at 1 Mbps; payload rates vary per exchange.
SessionResult GenerateCampus(emu::Ether& ether, const CampusConfig& cfg,
                             std::int64_t start_sample);

struct ZigbeeConfig {
  std::size_t count = 50;
  std::size_t psdu_bytes = 40;
  double interval_us = 5000.0;
  double snr_db = 20.0;
  std::uint32_t flow_id = 30;
};

/// Periodic ZigBee sensor reports with 802.15.4 LIFS spacing.
SessionResult GenerateZigbee(emu::Ether& ether, const ZigbeeConfig& cfg,
                             std::int64_t start_sample);

struct BleAdvConfig {
  std::size_t count = 4;          // advertising events (3 PDUs each)
  std::size_t adv_bytes = 24;     // payload bytes per PDU (<= 37)
  double interval_us = 20000.0;   // advertising-event spacing
  double snr_db = 25.0;
  std::uint32_t flow_id = 50;
};

/// BLE advertiser: each advertising event transmits the same PDU on channels
/// 37, 38 and 39 in turn with an inter-PDU gap, then idles until the next
/// event. Every PDU is one ground-truth record (kind "BLE-ADV").
SessionResult GenerateBleAdv(emu::Ether& ether, const BleAdvConfig& cfg,
                             std::int64_t start_sample);

}  // namespace rfdump::traffic
