#pragma once
// Bluetooth burst synthesis: packet bits -> GFSK burst at the hop channel's
// offset within the monitored band.

#include "rfdump/dsp/types.hpp"
#include "rfdump/phybt/packet.hpp"

namespace rfdump::phybt {

/// A modulated Bluetooth burst ready for the ether.
struct BtBurst {
  dsp::SampleVec samples;  // 8 Msps, already mixed to the channel offset;
                           // empty if the hop channel is outside the band
  int channel = 0;
  std::size_t air_bits = 0;
};

/// Builds and modulates one packet. `clk` selects both the hop channel and
/// the whitening seed. Bursts on channels outside the monitored 8 MHz return
/// an empty sample vector (the transmission exists but is not captured).
[[nodiscard]] BtBurst ModulatePacket(const DeviceAddress& addr,
                                     const PacketHeader& header,
                                     std::span<const std::uint8_t> payload,
                                     std::uint32_t clk);

/// Airtime of a packet in microseconds (1 us per bit at 1 Msym/s).
[[nodiscard]] double PacketAirtimeUs(PacketType type,
                                     std::size_t payload_bytes);

}  // namespace rfdump::phybt
