#pragma once
// Bluetooth baseband packet construction: channel access code (sync word
// derived from the LAP via the BCH(64,30) construction), packet header with
// rate-1/3 FEC and HEC, DH1/3/5 payloads with payload header and CRC-16, and
// data whitening.
//
// The demodulator side (BlueSniff-style) recovers the UAP-seeded checks by
// brute force where a passive observer could not know them a priori.

#include <cstdint>
#include <optional>

#include "rfdump/util/bits.hpp"

namespace rfdump::phybt {

/// Bluetooth device address pieces relevant to the baseband.
struct DeviceAddress {
  std::uint32_t lap = 0;  // lower address part, 24 bits (sync word seed)
  std::uint8_t uap = 0;   // upper address part (HEC / CRC seed)
};

/// Baseband packet types we model (4-bit TYPE field values for ACL).
enum class PacketType : std::uint8_t {
  kNull = 0x0,
  kPoll = 0x1,
  kDh1 = 0x4,
  kDh3 = 0xB,
  kDh5 = 0xF,
};

[[nodiscard]] const char* PacketTypeName(PacketType t);

/// Number of 625 us TDD slots a packet type occupies.
[[nodiscard]] std::size_t SlotsFor(PacketType t);

/// Maximum user payload bytes for a DH packet type.
[[nodiscard]] std::size_t MaxPayloadBytes(PacketType t);

/// Packet header fields (18 bits before FEC).
struct PacketHeader {
  std::uint8_t lt_addr = 1;  // 3 bits
  PacketType type = PacketType::kDh1;
  bool flow = true;
  bool arqn = false;
  bool seqn = false;
};

/// 64-bit sync word from the LAP (BCH(64,30) with pseudo-noise overlay per
/// Baseband spec 6.3.3). Bit 0 of the result is transmitted first.
[[nodiscard]] std::uint64_t SyncWord(std::uint32_t lap);

/// Full 68-bit access code: 4-bit preamble + 64-bit sync word (we omit the
/// optional 4-bit trailer, which only exists when a header follows and is
/// absorbed into our preamble handling).
[[nodiscard]] util::BitVec AccessCodeBits(std::uint32_t lap);

/// Verifies a received 64-bit sync word (bit 0 first) against the BCH(64,30)
/// code and recovers the transmitter LAP. `max_errors` bit errors are
/// tolerated (verified by re-encoding the recovered LAP). Returns nullopt if
/// the word is not a valid sync word.
[[nodiscard]] std::optional<std::uint32_t> VerifySyncWord(std::uint64_t word,
                                                          int max_errors = 0);

/// Whitening LFSR (x^7 + x^4 + 1) seeded with a 6-bit clock value (bit 6 is
/// fixed to 1 per spec). Returns the whitening sequence of length `n`.
[[nodiscard]] util::BitVec WhiteningSequence(std::uint8_t clk6, std::size_t n);

/// Serialized over-the-air bits of a complete packet: access code, FEC-1/3
/// header (whitened), payload header + payload + CRC-16 (whitened). For
/// kNull/kPoll there is no payload section.
[[nodiscard]] util::BitVec BuildPacketBits(
    const DeviceAddress& addr, const PacketHeader& header,
    std::span<const std::uint8_t> payload, std::uint8_t clk6);

/// Parsed packet (demodulator output).
struct ParsedPacket {
  PacketHeader header;
  std::vector<std::uint8_t> payload;
  bool crc_ok = false;
  std::uint8_t clk6 = 0;       // whitening seed recovered by brute force
  std::uint8_t uap = 0;        // UAP recovered from the HEC by brute force
};

/// Attempts to parse header + payload from the bit stream that follows an
/// access code. Brute-forces the whitening seed (64 values) and UAP via the
/// HEC, like BlueSniff. `bits` should contain at least 54 bits; payload
/// parsing uses as many whole bits as are available.
[[nodiscard]] std::optional<ParsedPacket> ParsePacketBits(
    std::span<const std::uint8_t> bits, std::uint8_t expected_uap);

/// Air bits for a packet type carrying `payload_bytes`
/// (68 access + 54 header + payload section with header/CRC).
[[nodiscard]] std::size_t PacketAirBits(PacketType t,
                                        std::size_t payload_bytes);

/// Payload header size in bytes for a type (1 for DH1, 2 for DH3/DH5).
[[nodiscard]] std::size_t PayloadHeaderBytes(PacketType t);

}  // namespace rfdump::phybt
