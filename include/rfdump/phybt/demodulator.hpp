#pragma once
// Bluetooth demodulator (BlueSniff-equivalent analysis stage).
//
// Scans the full 8 Msps band: each of the 8 visible 1 MHz channels is mixed
// to DC, channel-filtered, FM-discriminated, and searched for access codes.
// The sync word's BCH(64,30) structure is used to *verify* candidates and to
// recover the transmitter LAP without prior knowledge. Header whitening is
// brute-forced via the HEC (BlueSniff-style).
//
// One instance per channel is also supported (`channel_index` config) — the
// naive architecture in the efficiency experiments runs 8 of these, one per
// visible channel, mirroring the paper's setup.

#include <cstdint>
#include <optional>
#include <vector>

#include "rfdump/dsp/types.hpp"
#include "rfdump/phybt/packet.hpp"
#include "rfdump/util/work_budget.hpp"

namespace rfdump::phybt {

/// A demodulated Bluetooth packet.
struct DecodedBtPacket {
  std::uint32_t lap = 0;      // recovered from the sync word
  int channel_index = 0;      // visible channel [0, 8)
  ParsedPacket packet;
  std::int64_t start_sample = 0;  // access code start in the scanned span
  std::int64_t end_sample = 0;
};

struct BtDemodStats {
  std::uint64_t samples_processed = 0;  // front-end samples x channels
  std::uint64_t sync_checks = 0;
  std::uint64_t packets_decoded = 0;
};

class Demodulator {
 public:
  struct Config {
    /// UAP used to seed HEC/CRC checks (known to the experiments; a fully
    /// blind monitor would also iterate UAP candidates).
    std::uint8_t expected_uap = 0x47;
    /// If >= 0, scan only this visible channel index; otherwise scan all 8.
    int channel_index = -1;
    /// Maximum bit errors tolerated in the 64-bit sync word BCH check.
    int max_sync_errors = 0;
    /// Known full-band noise floor power. When > 0 the energy gate is derived
    /// from it; when 0 the floor is estimated from the scanned window itself
    /// (which fails when the window is mostly signal, as with dispatched
    /// detector intervals).
    double noise_floor_power = 0.0;
    /// Cooperative deadline (non-owning, armed by the supervision layer):
    /// the channelization front matter and the sync-search/body-decode loops
    /// charge their work against it and return early — keeping packets
    /// already decoded — once it expires. Null = unlimited.
    util::WorkBudget* budget = nullptr;
  };

  Demodulator();
  explicit Demodulator(Config config);

  /// Scans the band and returns every decodable packet.
  [[nodiscard]] std::vector<DecodedBtPacket> DecodeAll(
      dsp::const_sample_span x);

  const BtDemodStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  void ScanChannel(dsp::const_sample_span x, int idx,
                   std::vector<DecodedBtPacket>& out);

  Config config_;
  BtDemodStats stats_;
};

}  // namespace rfdump::phybt
