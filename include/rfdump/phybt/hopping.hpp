#pragma once
// Bluetooth frequency hopping and the mapping of hop channels into the 8 MHz
// monitored band.
//
// Bluetooth hops over 79 x 1 MHz channels at 1600 hops/s (one 625 us TDD slot
// per hop). The USRP-class front-end sees an 8 MHz slice, so exactly 8 of the
// 79 channels are visible — the paper could therefore observe ~1/10th of
// Bluetooth traffic (§4.7), and so does the emulator.
//
// Substitution note (DESIGN.md): the real hop selection kernel (Baseband
// 2.6) is replaced by a uniform pseudo-random permutation keyed on the device
// address and clock. The monitor never exploits hop-sequence structure, so
// only the uniform channel usage statistics matter.

#include <cstdint>
#include <optional>

namespace rfdump::phybt {

inline constexpr int kNumChannels = 79;
inline constexpr double kChannelWidthHz = 1e6;
/// 625 us TDD slot (1600 hops per second).
inline constexpr double kSlotUs = 625.0;

/// First Bluetooth channel visible in the monitored band; channels
/// [kFirstVisibleChannel, kFirstVisibleChannel + 8) map into the 8 MHz band.
inline constexpr int kFirstVisibleChannel = 38;
inline constexpr int kVisibleChannels = 8;

/// Hop channel for a device at slot `clk` (deterministic, uniform over 79).
[[nodiscard]] int HopChannel(std::uint32_t lap, std::uint32_t clk);

/// Baseband offset of a hop channel inside the monitored band, or nullopt if
/// the channel is outside the captured 8 MHz. Visible channel centers are at
/// -3.5, -2.5, ..., +3.5 MHz.
[[nodiscard]] std::optional<double> ChannelOffsetHz(int channel);

/// Offset (Hz) of visible-channel index `idx` in [0, 8).
[[nodiscard]] double VisibleIndexOffsetHz(int idx);

}  // namespace rfdump::phybt
