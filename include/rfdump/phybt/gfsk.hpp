#pragma once
// GFSK modulation/demodulation for Bluetooth BR: 1 Msym/s, Gaussian BT = 0.5,
// modulation index h ~= 0.32 (frequency deviation +/-160 kHz). At the 8 Msps
// front-end rate there are exactly 8 samples per symbol, and one Bluetooth
// channel (1 MHz) fits well inside the captured band.

#include "rfdump/dsp/types.hpp"
#include "rfdump/util/bits.hpp"

namespace rfdump::phybt {

inline constexpr double kSymbolRateHz = 1e6;
inline constexpr std::size_t kSamplesPerSymbol = 8;  // at 8 Msps
inline constexpr double kModulationIndex = 0.32;
inline constexpr double kGaussianBt = 0.5;

/// Modulates bits to a unit-amplitude complex baseband burst (centered at DC;
/// the caller mixes it to its hop channel). Includes `ramp_symbols` of
/// guard/ramp at each end so the Gaussian filter transient stays inside the
/// burst.
[[nodiscard]] dsp::SampleVec GfskModulate(std::span<const std::uint8_t> bits,
                                          std::size_t ramp_symbols = 2);

/// FM discriminator: per-sample instantaneous frequency estimate
/// (phase difference of consecutive samples), length x.size()-1.
[[nodiscard]] std::vector<float> FmDiscriminate(dsp::const_sample_span x);

/// Allocation-free variant: resizes `out` to x.size()-1 (reuse one buffer
/// across the 79-channel scan instead of allocating per channel).
void FmDiscriminateInto(dsp::const_sample_span x, std::vector<float>& out);

/// Demodulates a discriminator output back to bits given the sample offset of
/// the first symbol center. Slices the sign of the averaged per-symbol
/// frequency. Returns as many whole symbols as available.
[[nodiscard]] util::BitVec SliceSymbols(std::span<const float> freq,
                                        std::size_t first_center,
                                        std::size_t count);

}  // namespace rfdump::phybt
