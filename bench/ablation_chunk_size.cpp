// Ablation: chunk size (paper §4.2). Chunking trades metadata overhead
// against noise forwarded to the demodulators: per-sample metadata is
// expensive, huge chunks forward whole chunks of noise around every packet.
// The paper chose 200 samples (25 us); this sweep shows the trade-off.
//
// Note kChunkSamples is a compile-time constant for the pipeline; this bench
// reimplements the chunk loop locally so the size can vary.

#include <chrono>

#include "bench_common.hpp"
#include "rfdump/core/peaks.hpp"

namespace {

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

struct Result {
  double detect_seconds;
  std::int64_t forwarded_excess;  // non-signal samples inside padded peaks
  std::size_t peaks;
};

Result RunWithChunk(std::size_t chunk, dsp::const_sample_span x,
                    const std::vector<rfdump::emu::TruthRecord>& truth) {
  const auto t0 = std::chrono::steady_clock::now();
  core::PeakDetector det;
  for (std::size_t at = 0; at < x.size(); at += chunk) {
    det.PushChunk(x.subspan(at, std::min(chunk, x.size() - at)),
                  static_cast<std::int64_t>(at));
  }
  det.Flush();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Forwarding granularity: everything is dispatched in whole chunks, so a
  // peak costs ceil(len/chunk) chunks of samples.
  std::int64_t forwarded = 0;
  for (const auto& p : det.history()) {
    const std::int64_t len = p.length();
    const auto chunks =
        (len + static_cast<std::int64_t>(chunk) - 1) /
        static_cast<std::int64_t>(chunk);
    forwarded += chunks * static_cast<std::int64_t>(chunk);
  }
  std::int64_t signal = 0;
  for (const auto& r : truth) {
    if (r.visible) signal += r.end_sample - r.start_sample;
  }
  return {secs, forwarded - signal, det.history().size()};
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation - chunk size (paper default: 200 = 25 us)");

  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = bench::Scaled(40);
  cfg.interval_us = 20000.0;
  cfg.snr_db = 25.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);

  std::printf("%10s %12s %18s %8s\n", "chunk", "detect s", "excess fwd smpl",
              "peaks");
  for (std::size_t chunk : {25u, 50u, 100u, 200u, 400u, 800u, 1600u}) {
    const auto r = RunWithChunk(chunk, x, ether.truth());
    std::printf("%7zu%s %12.4f %18lld %8zu\n", chunk,
                chunk == 200 ? "*" : " ", r.detect_seconds,
                static_cast<long long>(r.forwarded_excess), r.peaks);
  }
  std::printf("\nsmall chunks: more per-chunk overhead; large chunks: more\n"
              "noise forwarded per packet. 200 samples sits at the knee.\n");
  return 0;
}
