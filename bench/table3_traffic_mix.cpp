// Table 3: traffic-mix results — packet miss rate and false-positive sample
// rate for the timing and phase detectors with 802.11b and Bluetooth
// transmitting simultaneously.
//
// Paper (1000 802.11 packets + 1000 L2CAP pings):
//            miss 802.11b  miss BT   FP 802.11b  FP BT
//   Timing      0.018       0.024      0.0007     0.007
//   Phase       0.018       0.012      0.01       0.0002
// with collision fractions ~0.016 (802.11) / ~0.012 (BT) accounting for
// nearly all misses.

#include "bench_common.hpp"

namespace {

std::size_t CountCollisions(const std::vector<rfdump::emu::TruthRecord>& truth,
                            rfdump::core::Protocol protocol,
                            std::int64_t total) {
  std::size_t collisions = 0;
  for (const auto& a : truth) {
    if (!a.visible || a.protocol != protocol || a.end_sample > total) continue;
    for (const auto& b : truth) {
      if (!b.visible || b.protocol == protocol) continue;
      if (a.start_sample < b.end_sample && b.start_sample < a.end_sample) {
        ++collisions;
        break;
      }
    }
  }
  return collisions;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 3 - traffic mix (802.11b + Bluetooth)");

  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(250);  // -> 4x frames (data+ACK, both ways)
  wcfg.snr_db = 25.0;
  wcfg.interval_us = 120000.0;  // keep utilization low, like the paper's mix
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(500);  // request + response per ping
  bcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bcfg, 16000);
  const auto x = ether.Render(std::max(ws.end_sample, bs.end_sample) + 8000);
  const auto total = static_cast<std::int64_t>(x.size());

  rfdump::core::RFDumpPipeline::Config pcfg;
  pcfg.analysis.demodulate = false;
  rfdump::core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);

  using rfdump::core::Protocol;
  struct Row {
    const char* name;
    const char* wifi_detector;
    const char* bt_detector;
  };
  const Row rows[] = {
      {"Timing", "80211-sifs-timing", "bt-slot-timing"},
      {"Phase", "dbpsk-phase", "gfsk-phase"},
  };

  // Truth with collided packets removed, for the discounted miss columns
  // (the paper: "if we discount this fraction, both detectors have a packet
  // miss rate of almost zero").
  auto truth_no_collisions = ether.truth();
  {
    std::vector<rfdump::emu::TruthRecord> kept;
    for (const auto& a : truth_no_collisions) {
      bool collided = false;
      if (a.visible) {
        for (const auto& b : ether.truth()) {
          if (!b.visible || b.protocol == a.protocol) continue;
          if (a.start_sample < b.end_sample &&
              b.start_sample < a.end_sample) {
            collided = true;
            break;
          }
        }
      }
      if (!collided) kept.push_back(a);
    }
    truth_no_collisions = std::move(kept);
  }

  std::printf("%-8s %14s %14s %14s %14s %12s %12s\n", "Detector",
              "miss 802.11b", "miss BT", "FP 802.11b", "FP BT",
              "miss w (disc)", "miss bt (disc)");
  for (const Row& row : rows) {
    const auto wifi = rfdump::core::ScoreDetections(
        ether.truth(), Protocol::kWifi80211b, report.detections, total,
        row.wifi_detector);
    const auto bt = rfdump::core::ScoreDetections(
        ether.truth(), Protocol::kBluetooth, report.detections, total,
        row.bt_detector);
    const auto wifi_disc = rfdump::core::ScoreDetections(
        truth_no_collisions, Protocol::kWifi80211b, report.detections, total,
        row.wifi_detector);
    const auto bt_disc = rfdump::core::ScoreDetections(
        truth_no_collisions, Protocol::kBluetooth, report.detections, total,
        row.bt_detector);
    std::printf("%-8s %14s %14s %14s %14s %12s %12s\n", row.name,
                bench::FmtRate(wifi.MissRate()).c_str(),
                bench::FmtRate(bt.MissRate()).c_str(),
                bench::FmtRate(wifi.FalsePositiveRate(total)).c_str(),
                bench::FmtRate(bt.FalsePositiveRate(total)).c_str(),
                bench::FmtRate(wifi_disc.MissRate()).c_str(),
                bench::FmtRate(bt_disc.MissRate()).c_str());
  }

  const auto wifi_pkts = rfdump::core::VisibleTruthWithin(
      ether.truth(), Protocol::kWifi80211b, total);
  const auto bt_pkts = rfdump::core::VisibleTruthWithin(
      ether.truth(), Protocol::kBluetooth, total);
  const double wifi_coll =
      static_cast<double>(CountCollisions(ether.truth(),
                                          Protocol::kWifi80211b, total)) /
      static_cast<double>(wifi_pkts.size());
  const double bt_coll =
      static_cast<double>(CountCollisions(ether.truth(), Protocol::kBluetooth,
                                          total)) /
      static_cast<double>(bt_pkts.size());
  std::printf("\ncollision fraction: 802.11b %s, Bluetooth %s "
              "(collisions appear as misses; no collision handling, like the "
              "paper)\n",
              bench::FmtRate(wifi_coll).c_str(),
              bench::FmtRate(bt_coll).c_str());
  std::printf("paper: timing 0.018/0.024 miss, 0.0007/0.007 FP;"
              " phase 0.018/0.012 miss, 0.01/0.0002 FP\n");
  return 0;
}
