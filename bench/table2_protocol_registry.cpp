// Table 2: the protocol feature registry the detectors key on — timing,
// modulation, spreading and channel width per technology in the 2.4 GHz ISM
// band. Printed directly from the machine-readable registry the detectors
// actually use, so this table cannot drift from the implementation.

#include <cstdio>

#include "rfdump/core/protocols.hpp"

int main() {
  std::printf("Table 2 - Relevant features of 2.4 GHz ISM protocols\n\n");
  std::printf("%-24s %10s %10s %-8s %-10s %8s %12s\n", "Protocol",
              "Slot(us)", "SIFS(us)", "Modul.", "Spreading", "Width",
              "Sym rate");
  for (const auto& row : rfdump::core::FeatureTable()) {
    char width[24];
    std::snprintf(width, sizeof(width), "%g MHz", row.channel_width_mhz);
    char sym[24];
    if (row.symbol_rate_hz > 0) {
      std::snprintf(sym, sizeof(sym), "%g ksym/s", row.symbol_rate_hz / 1e3);
    } else {
      std::snprintf(sym, sizeof(sym), "-");
    }
    std::printf("%-24s %10g %10g %-8s %-10s %8s %12s\n", row.variant.c_str(),
                row.slot_time_us, row.sifs_us,
                rfdump::core::ModulationName(row.modulation),
                row.spreading.c_str(), width, sym);
  }
  std::printf("\n(cf. paper Table 2; microwave row: 'slot' = AC cycle)\n");
  return 0;
}
