// Figure 7: 802.11 broadcast microbenchmark — packet miss rate vs SNR for the
// DIFS-timing detector on a broadcast flood (packets spaced DIFS + k x SlotTime).
//
// Paper: 4000 packets; near-zero misses above 9 dB, sharp rise below.

#include "bench_common.hpp"

int main() {
  bench::PrintHeader("Figure 7 - 802.11 broadcast: packet miss rate vs SNR");
  std::printf("%6s %10s %18s\n", "SNR", "packets", "DIFS-timing miss");

  const double snrs[] = {0, 3, 6, 7, 8, 9, 10, 12, 15, 20, 25, 30};
  for (const double snr : snrs) {
    rfdump::emu::Ether ether;
    rfdump::traffic::WifiBroadcastConfig cfg;
    cfg.count = bench::Scaled(400);  // paper used 4000; 1/10 by default here
    cfg.snr_db = snr;
    const auto session =
        rfdump::traffic::GenerateBroadcastFlood(ether, cfg, 8000);
    const auto x = ether.Render(session.end_sample + 8000);

    rfdump::core::RFDumpPipeline::Config pcfg;
    pcfg.analysis.demodulate = false;
    rfdump::core::RFDumpPipeline pipeline(pcfg);
    const auto report = pipeline.Process(x);

    const auto s = rfdump::core::ScoreDetections(
        ether.truth(), rfdump::core::Protocol::kWifi80211b, report.detections,
        static_cast<std::int64_t>(x.size()), "80211-difs-timing");
    std::printf("%6.1f %10zu %18s\n", snr, s.truth_packets,
                bench::FmtRate(s.MissRate()).c_str());
  }
  std::printf("\npaper shape: ~0 miss above 9 dB, rapid rise below.\n");
  return 0;
}
