// Parallel analysis speedup (DESIGN.md §10): the demodulator bank fanned
// out over a work-stealing executor must (a) produce a MonitorReport whose
// result-bearing fields are bit-identical to the serial run — parallelism is
// only allowed to move wall time — and (b) cut the analysis-stage wall time
// by >= 2x at 4 workers on hardware that actually has them.
//
// Strategy: build the Table-3 traffic mix (Wi-Fi pings + a Bluetooth ACL
// session, the workload with the richest dispatched-interval population),
// run Detect() once, then time AnalyzeDetections() over the same detection
// output at widths 1 and 4. Result equality is a hard gate everywhere; the
// speedup gate only applies when std::thread::hardware_concurrency() >= 4 —
// on smaller hosts (CI containers) the bench reports the ratio and SKIPs
// that gate, because a 1-core box cannot demonstrate parallel speedup.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "rfdump/core/executor.hpp"
#include "rfdump/obs/obs.hpp"

namespace {

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

/// Result-bearing fields only: cpu_seconds in the cost ledger is timing and
/// legitimately differs across widths.
bool SameResults(const core::MonitorReport& a, const core::MonitorReport& b,
                 std::string& why) {
  if (a.samples_total != b.samples_total) { why = "samples_total"; return false; }
  if (a.detections.size() != b.detections.size()) { why = "detections"; return false; }
  if (a.dispatched.size() != b.dispatched.size()) { why = "dispatched"; return false; }
  if (a.wifi_frames.size() != b.wifi_frames.size()) { why = "wifi count"; return false; }
  if (a.bt_packets.size() != b.bt_packets.size()) { why = "bt count"; return false; }
  if (a.zb_frames.size() != b.zb_frames.size()) { why = "zb count"; return false; }
  for (std::size_t i = 0; i < a.wifi_frames.size(); ++i) {
    const auto& fa = a.wifi_frames[i];
    const auto& fb = b.wifi_frames[i];
    if (fa.start_sample != fb.start_sample || fa.end_sample != fb.end_sample ||
        fa.fcs_ok != fb.fcs_ok || fa.mpdu != fb.mpdu) {
      why = "wifi frame " + std::to_string(i);
      return false;
    }
  }
  for (std::size_t i = 0; i < a.bt_packets.size(); ++i) {
    const auto& pa = a.bt_packets[i];
    const auto& pb = b.bt_packets[i];
    if (pa.start_sample != pb.start_sample || pa.lap != pb.lap ||
        pa.channel_index != pb.channel_index ||
        pa.packet.crc_ok != pb.packet.crc_ok ||
        pa.packet.payload != pb.packet.payload) {
      why = "bt packet " + std::to_string(i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader("Parallel analysis speedup (Table-3 traffic mix)");

  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(40);
  wcfg.interval_us = 14000.0;
  wcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(60);
  bcfg.snr_db = 25.0;
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bcfg, 12000);
  const auto x = ether.Render(std::max(ws.end_sample, bs.end_sample) + 8000);
  const double real_seconds =
      static_cast<double>(x.size()) / dsp::kSampleRateHz;

  core::RFDumpPipeline::Config cfg;
  core::RFDumpPipeline pipeline(cfg);

  // Detection runs once; both widths analyze the *same* detection output.
  const auto det = pipeline.Detect(x);
  std::printf("capture: %.3f s of ether, %zu dispatched intervals\n\n",
              real_seconds, det.report.dispatched.size());

  constexpr int kReps = 3;  // best-of: squeezes out scheduler noise
  const auto time_width = [&](int width, core::MonitorReport& out) {
    core::Executor executor(width);
    double best = 1e300;
    for (int r = 0; r < kReps; ++r) {
      auto copy = det;  // AnalyzeDetections consumes its input
      rfdump::obs::Stopwatch w;
      auto report = core::AnalyzeDetections(std::move(copy), x, &executor);
      best = std::min(best, w.Seconds());
      out = std::move(report);
    }
    return best;
  };

  core::MonitorReport serial_report, parallel_report;
  const double t1 = time_width(1, serial_report);
  const double t4 = time_width(4, parallel_report);
  const double speedup = t4 > 0.0 ? t1 / t4 : 0.0;

  std::printf("%-32s %8.4f s  (%.3fx real time)\n", "analysis, --threads 1",
              t1, t1 / real_seconds);
  std::printf("%-32s %8.4f s  (%.3fx real time)\n", "analysis, --threads 4",
              t4, t4 / real_seconds);
  std::printf("%-32s %8.2fx\n\n", "speedup", speedup);

  // Hard gate at every width: bit-identical result-bearing report fields.
  std::string why;
  const bool identical = SameResults(serial_report, parallel_report, why);
  std::printf("parallel report identical to serial: %s%s%s\n",
              identical ? "yes" : "NO (", identical ? "" : why.c_str(),
              identical ? "" : ")");
  std::printf("  %zu wifi frames / %zu bt packets / %zu detections\n",
              serial_report.wifi_frames.size(),
              serial_report.bt_packets.size(),
              serial_report.detections.size());

  // Under ThreadSanitizer the run is a race check, not a timing experiment:
  // instrumentation skews the two widths unevenly, so only the equality
  // gate applies.
  bool tsan = false;
#if defined(__SANITIZE_THREAD__)
  tsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  tsan = true;
#endif
#endif

  const unsigned hw = std::thread::hardware_concurrency();
  bool pass = identical;
  if (tsan) {
    std::printf("\n>=2x speedup gate: SKIP (ThreadSanitizer build — timing "
                "is not meaningful)\n");
  } else if (hw >= 4) {
    const bool fast_enough = speedup >= 2.0;
    std::printf("\n>=2x speedup at 4 workers (%u hardware threads): %s\n",
                hw, fast_enough ? "PASS" : "FAIL");
    pass = pass && fast_enough;
  } else {
    std::printf("\n>=2x speedup gate: SKIP (%u hardware thread%s — cannot "
                "demonstrate parallel speedup on this host)\n",
                hw, hw == 1 ? "" : "s");
  }
  std::printf("result equality: %s\n", identical ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
