// Ablation: sampling in the fast detectors (paper §3.1 proposes it, the
// prototype never implemented it: "Our current prototype implements energy
// detection but does not use sampling"). Our DBPSK prefix scan supports a
// window stride: examine only every k-th window of a burst. This sweep
// measures the detection-cost saving against the boundary-resolution loss
// (extra samples forwarded per CCK packet whose DBPSK prefix ends between
// probed windows).

#include <chrono>

#include "bench_common.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/core/scoring.hpp"

namespace {
namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation - detector sampling (DBPSK prefix-scan window stride)");

  // Campus-style trace: long 1 Mbps frames (whole-burst scans, where the
  // stride saves the most) plus CCK frames (where it costs resolution).
  rfdump::emu::Ether ether;
  rfdump::traffic::CampusConfig cfg;
  cfg.duration_sec = 0.3 + bench::Scale() * 0.4;
  cfg.include_bluetooth = false;
  rfdump::traffic::GenerateCampus(ether, cfg, 4000);
  const auto x = ether.Render(
      static_cast<std::int64_t>((cfg.duration_sec + 0.01) *
                                dsp::kSampleRateHz));
  const auto total = static_cast<std::int64_t>(x.size());

  // Shared peak detection.
  core::PeakDetector det;
  for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
    det.PushChunk(dsp::const_sample_span(x).subspan(
                      at, std::min(core::kChunkSamples, x.size() - at)),
                  static_cast<std::int64_t>(at));
  }
  det.Flush();

  std::printf("%8s %12s %12s %16s %14s\n", "stride", "scan time", "tags",
              "fwd samples", "miss rate");
  for (std::size_t stride : {1u, 2u, 4u, 8u, 16u}) {
    core::DbpskPhaseDetector::Config dcfg;
    dcfg.scan_stride_windows = stride;
    core::DbpskPhaseDetector phase(dcfg);
    std::vector<core::Detection> detections;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : det.history()) {
      const auto s = static_cast<std::size_t>(std::max<std::int64_t>(
          p.start_sample, 0));
      const auto e = static_cast<std::size_t>(std::min<std::int64_t>(
          p.end_sample, total));
      if (e <= s) continue;
      if (auto d = phase.OnPeak(p, dsp::const_sample_span(x).subspan(s, e - s))) {
        detections.push_back(*d);
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto merged = core::MergeDetections(detections, 0, total);
    const auto score = core::ScoreDetections(
        ether.truth(), core::Protocol::kWifi80211b, detections, total,
        "dbpsk-phase", /*min_overlap=*/0.1);
    std::printf("%7zu%s %11.4fs %12zu %16lld %14s\n", stride,
                stride == 1 ? "*" : " ", secs, detections.size(),
                static_cast<long long>(core::CoverageSamples(merged)),
                bench::FmtRate(score.MissRate()).c_str());
  }
  std::printf("\nlarger strides cut scan cost with little accuracy loss; the\n"
              "price is coarser CCK prefix boundaries (more samples\n"
              "forwarded). The paper proposed exactly this trade (3.1).\n");
  return 0;
}
