#pragma once
// Shared helpers for the experiment-reproduction benches (one binary per
// paper table/figure). Each bench prints the same rows/series the paper
// reports; absolute numbers depend on this machine, the paper-vs-measured
// comparison lives in EXPERIMENTS.md.

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace bench {

/// Scale factor for workload sizes: RFDUMP_SCALE=1.0 reproduces the paper's
/// packet counts exactly; the default 0.5 halves them to keep the whole bench
/// suite fast on one core.
inline double Scale() {
  if (const char* env = std::getenv("RFDUMP_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.5;
}

inline std::size_t Scaled(std::size_t paper_count) {
  const auto v = static_cast<std::size_t>(
      static_cast<double>(paper_count) * Scale() + 0.5);
  return v > 0 ? v : 1;
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(workload scale %.2f; set RFDUMP_SCALE=1 for paper-size runs)\n",
              Scale());
  std::printf("==============================================================\n");
}

/// Formats a miss rate the way the paper's figures read (log floor at 1e-4).
inline std::string FmtRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", rate);
  return buf;
}

// ------------------------------------------------------------ JSON output
// Machine-readable bench results (BENCH_<name>.json). Values are
// pre-rendered strings so nesting is plain composition; the schema each
// bench emits is documented in README.md ("Benchmark JSON output").

inline std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string JsonInt(long long v) { return std::to_string(v); }

inline std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

struct JsonKV {
  std::string key;
  std::string val;  // pre-rendered JSON
};

inline std::string JsonObj(const std::vector<JsonKV>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += JsonStr(fields[i].key) + ": " + fields[i].val;
  }
  out += "}";
  return out;
}

inline std::string JsonArr(const std::vector<std::string>& elems) {
  std::string out = "[";
  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (i) out += ", ";
    out += elems[i];
  }
  out += "]";
  return out;
}

/// Writes BENCH_<name>.json into $RFDUMP_BENCH_OUT (or the current
/// directory). Run benches from the repo root to land the files there.
inline void WriteBenchJson(const std::string& name, const std::string& body) {
  const char* dir = std::getenv("RFDUMP_BENCH_OUT");
  const std::string path =
      std::string(dir ? dir : ".") + "/BENCH_" + name + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(body.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
}

}  // namespace bench
