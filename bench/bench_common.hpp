#pragma once
// Shared helpers for the experiment-reproduction benches (one binary per
// paper table/figure). Each bench prints the same rows/series the paper
// reports; absolute numbers depend on this machine, the paper-vs-measured
// comparison lives in EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace bench {

/// Scale factor for workload sizes: RFDUMP_SCALE=1.0 reproduces the paper's
/// packet counts exactly; the default 0.5 halves them to keep the whole bench
/// suite fast on one core.
inline double Scale() {
  if (const char* env = std::getenv("RFDUMP_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.5;
}

inline std::size_t Scaled(std::size_t paper_count) {
  const auto v = static_cast<std::size_t>(
      static_cast<double>(paper_count) * Scale() + 0.5);
  return v > 0 ? v : 1;
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(workload scale %.2f; set RFDUMP_SCALE=1 for paper-size runs)\n",
              Scale());
  std::printf("==============================================================\n");
}

/// Formats a miss rate the way the paper's figures read (log floor at 1e-4).
inline std::string FmtRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", rate);
  return buf;
}

}  // namespace bench
