// Supervision overhead: proves the stage-boundary budget (<1% of block CPU,
// DESIGN.md §9) on the Table-1 workload.
//
// Strategy (same contract as obs_overhead): (a) microbenchmark the two
// primitives the clean path pays for — WorkBudget::Charge at the
// demodulators' check quanta, and an empty supervised invocation (lock,
// breaker check, budget arm, outcome accounting) — then (b) count how many
// of each one supervised pipeline pass over the Table-1 capture really
// performs (Supervisor::Counts). The product is supervision's share of the
// measured block CPU. A results-equality check guards against the cheaper
// failure mode: a supervisor that is fast because it silently changed what
// gets decoded.

#include <cstdint>
#include <cstdio>

#include "bench_common.hpp"
#include "rfdump/core/supervisor.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/util/work_budget.hpp"

namespace {

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace obs = rfdump::obs;
namespace util = rfdump::util;

double NsPerOp(double seconds, std::uint64_t ops) {
  return ops > 0 ? seconds * 1e9 / static_cast<double>(ops) : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Supervision overhead on the Table-1 workload");

  // --- Primitive costs -----------------------------------------------------
  // Charge() on an armed, non-expiring budget: the per-quantum cost the
  // demodulator loops pay (one relaxed load + fetch_add + two compares).
  util::WorkBudget budget;
  budget.Arm({.max_samples = 0, .max_cpu_seconds = 0.0});
  constexpr std::uint64_t kChargeOps = 20'000'000;
  obs::Stopwatch w;
  std::uint64_t live = 0;
  for (std::uint64_t i = 0; i < kChargeOps; ++i) {
    live += budget.Charge(32) ? 1 : 0;
  }
  const double t_charge = NsPerOp(w.Seconds(), kChargeOps);

  // One full stage boundary around an empty closure: breaker check + budget
  // arm + outcome/window accounting (two short critical sections).
  core::Supervisor sup;
  const dsp::SampleVec dummy(64);
  constexpr std::uint64_t kSuperviseOps = 1'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kSuperviseOps; ++i) {
    sup.Supervise(core::Protocol::kWifi80211b, 0, 64, dummy,
                  [](util::WorkBudget&) {});
  }
  const double t_supervise = NsPerOp(w.Seconds(), kSuperviseOps);

  std::printf("%-38s %8.2f ns/op  (%llu live)\n",
              "WorkBudget::Charge (armed, clean)", t_charge,
              static_cast<unsigned long long>(live));
  std::printf("%-38s %8.2f ns/op\n\n", "Supervise() boundary, empty closure",
              t_supervise);

  // --- Event volume + pipeline cost on the Table-1 capture -----------------
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(60);
  wcfg.interval_us = 14000.0;
  wcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(40);
  bcfg.snr_db = 25.0;
  rfdump::traffic::GenerateL2Ping(ether, bcfg, 12000);
  const auto x = ether.Render(ws.end_sample + 8000);
  const double real_seconds =
      static_cast<double>(x.size()) / dsp::kSampleRateHz;

  core::RFDumpPipeline::Config cfg;
  cfg.microwave_detector = true;

  // Unsupervised baseline (results reference + cache warmup).
  core::RFDumpPipeline baseline(cfg);
  const auto unsup = baseline.Process(x);

  // Supervised pass, clean path: generous (but armed) deadline so every
  // Charge() does real comparisons, nothing expires.
  core::Supervisor::Config scfg;
  scfg.demod_limits.max_samples = ~0ull >> 1;
  core::Supervisor supervisor(scfg);
  cfg.supervisor = &supervisor;
  core::RFDumpPipeline supervised_pipeline(cfg);
  w.Reset();
  const auto sup_report = supervised_pipeline.Process(x);
  const double pipeline_seconds = w.Seconds();

  const auto counts = supervisor.counts();
  const double supervision_seconds =
      (static_cast<double>(counts.budget_checks) * t_charge +
       static_cast<double>(counts.invocations) * t_supervise) *
      1e-9;
  const double share =
      pipeline_seconds > 0.0 ? supervision_seconds / pipeline_seconds : 0.0;

  std::printf("capture: %.3f s of ether; supervised pipeline CPU %.3f s "
              "(%.3fx real time)\n",
              real_seconds, pipeline_seconds,
              pipeline_seconds / real_seconds);
  std::printf("supervised invocations: %llu; deadline checks: %llu "
              "(%.1f per 1k samples)\n",
              static_cast<unsigned long long>(counts.invocations),
              static_cast<unsigned long long>(counts.budget_checks),
              1000.0 * static_cast<double>(counts.budget_checks) /
                  static_cast<double>(x.size()));
  std::printf("estimated supervision cost: %.6f s = %.4f%% of block CPU\n",
              supervision_seconds, share * 100.0);

  // Clean-path equivalence: supervision must not change what gets decoded.
  const bool same_results =
      sup_report.wifi_frames.size() == unsup.wifi_frames.size() &&
      sup_report.bt_packets.size() == unsup.bt_packets.size() &&
      sup_report.zb_frames.size() == unsup.zb_frames.size() &&
      counts.ok == counts.invocations;
  std::printf("clean-path results identical to unsupervised: %s "
              "(%zu wifi / %zu bt, all outcomes ok)\n",
              same_results ? "yes" : "NO",
              sup_report.wifi_frames.size(), sup_report.bt_packets.size());

  const bool pass = share < 0.01 && same_results;
  std::printf("\nbudget <1%% of block CPU: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
