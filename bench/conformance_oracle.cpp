// Conformance-harness cost model (DESIGN.md §11): what a CI gate actually
// pays per seed. Four rows:
//   render       — ScenarioBuilder -> IQ samples + truth (emulator cost)
//   rfdump       — one RFDumpPipeline pass over the rendered scenario
//   oracle       — ScoreReport matching decodes against truth records
//   differential — the full 4-architecture differential (dominated by the
//                  two naive passes; the paper's efficiency argument shows
//                  up here as the naive/rfdump cost ratio)
// The oracle row must be noise next to the pipeline rows: scoring is
// bookkeeping, not DSP, and a slow oracle would cap how many seeds CI can
// afford to sweep.

#include <cstdint>
#include <cstdio>

#include "bench_common.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/testing/differential.hpp"
#include "rfdump/testing/oracle.hpp"

namespace {

namespace core = rfdump::core;
namespace rft = rfdump::testing;

}  // namespace

int main() {
  bench::PrintHeader("Conformance harness cost per seed (canned mixed mix)");

  const auto seeds_to_run =
      static_cast<std::uint64_t>(bench::Scaled(8));
  double t_render = 0.0, t_pipeline = 0.0, t_oracle = 0.0, t_diff = 0.0;
  std::size_t truth_total = 0, decode_total = 0;
  rfdump::obs::Stopwatch w;

  for (std::uint64_t seed = 1; seed <= seeds_to_run; ++seed) {
    w.Reset();
    const auto scenario = rft::CannedMixedScenario(seed);
    t_render += w.Seconds();

    core::RFDumpPipeline::Config cfg;
    cfg.zigbee_detector = true;
    cfg.analysis.zigbee_demod = true;
    w.Reset();
    const auto report = core::RFDumpPipeline(cfg).Process(scenario.samples);
    t_pipeline += w.Seconds();

    w.Reset();
    const auto conf = rft::ScoreReport(scenario, report);
    t_oracle += w.Seconds();
    for (const auto& p : conf.protocols) {
      truth_total += p.truth_packets;
      decode_total += p.decoded;
    }

    w.Reset();
    const auto diff = rft::RunDifferential(scenario);
    t_diff += w.Seconds();
    if (!diff.ok()) {
      std::printf("DIFFERENTIAL MISMATCH (bench workload!):\n%s",
                  diff.Summary().c_str());
      return 1;
    }
  }

  const double n = static_cast<double>(seeds_to_run);
  std::printf("\n%-14s %12s %16s\n", "stage", "ms/seed", "share of diff");
  const auto row = [&](const char* name, double total) {
    std::printf("%-14s %12.2f %15.1f%%\n", name, 1e3 * total / n,
                t_diff > 0.0 ? 100.0 * total / t_diff : 0.0);
  };
  row("render", t_render);
  row("rfdump", t_pipeline);
  row("oracle", t_oracle);
  row("differential", t_diff);
  std::printf(
      "\n%llu seeds, %zu truth records, %zu decodes scored; oracle cost "
      "%.2f us per (truth x decode) candidate set\n",
      static_cast<unsigned long long>(seeds_to_run), truth_total, decode_total,
      truth_total > 0 ? 1e6 * t_oracle / static_cast<double>(truth_total)
                      : 0.0);
  const double per_seed = (t_render + t_diff) / n;
  std::printf("full differential gate: %.1f ms/seed -> %.0f seeds/minute "
              "of CI budget\n",
              1e3 * per_seed, per_seed > 0.0 ? 60.0 / per_seed : 0.0);
  return 0;
}
