// Ablation: energy-gate threshold (paper §4.3 uses noise floor + 4 dB).
// Lower gates forward more noise to the demodulators (wasted work, false
// peaks); higher gates start missing low-SNR packets. This sweep shows the
// miss rate / forwarded-samples trade-off at a mid-knee SNR.

#include "bench_common.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/core/timing_detectors.hpp"

namespace {
namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation - energy gate threshold (paper default: +4 dB)");

  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = bench::Scaled(60);
  cfg.interval_us = 15000.0;
  cfg.snr_db = 7.0;  // mid-knee: gate choice decides hits vs misses
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);
  const auto total = static_cast<std::int64_t>(x.size());

  std::printf("%10s %8s %16s %16s\n", "gate (dB)", "peaks", "SIFS miss",
              "FP sample rate");
  for (double gate : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    core::PeakDetector::Config pcfg;
    pcfg.gate_db = gate;
    core::PeakDetector det(pcfg);
    for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
      det.PushChunk(dsp::const_sample_span(x).subspan(
                        at, std::min(core::kChunkSamples, x.size() - at)),
                    static_cast<std::int64_t>(at));
    }
    det.Flush();
    core::WifiTimingDetector timing;
    std::vector<core::Peak> peaks(det.history().begin(), det.history().end());
    const auto detections = timing.OnPeaks(peaks);
    const auto score = core::ScoreDetections(
        ether.truth(), core::Protocol::kWifi80211b, detections, total,
        "80211-sifs-timing");
    std::printf("%9.1f%s %8zu %16s %16s\n", gate, gate == 4.0 ? "*" : " ",
                det.history().size(),
                bench::FmtRate(score.MissRate()).c_str(),
                bench::FmtRate(score.FalsePositiveRate(total)).c_str());
  }
  std::printf("\nlow gates produce noise peaks (splitting real timing gaps\n"
              "and forwarding junk); high gates miss the packets outright.\n");
  return 0;
}
