// Figure 6: 802.11 unicast microbenchmark — packet miss rate vs SNR for the
// SIFS-timing detector and the DBPSK-phase detector.
//
// Paper: both detectors are near zero above ~9 dB; below that the miss rate
// rises sharply (the peak-detector energy gate stops firing). The phase
// detector's knee sits slightly higher than the timing detector's.
//
// Workload: ping generates ICMP echo request/reply pairs (500-byte frames at
// 1 Mbps) plus MAC ACKs; paper used 250 pings = 1000 packets.

#include "bench_common.hpp"

int main() {
  bench::PrintHeader("Figure 6 - 802.11 unicast: packet miss rate vs SNR");
  std::printf("%6s %10s %18s %18s\n", "SNR", "packets", "SIFS-timing miss",
              "DBPSK-phase miss");

  const double snrs[] = {0, 3, 6, 7, 8, 9, 10, 12, 15, 20, 25, 30};
  for (const double snr : snrs) {
    rfdump::emu::Ether ether;
    rfdump::traffic::WifiPingConfig cfg;
    cfg.count = bench::Scaled(250);
    cfg.snr_db = snr;
    cfg.interval_us = 11000.0;
    const auto session =
        rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
    const auto x = ether.Render(session.end_sample + 8000);
    const auto total = static_cast<std::int64_t>(x.size());

    rfdump::core::RFDumpPipeline::Config pcfg;
    pcfg.analysis.demodulate = false;
    rfdump::core::RFDumpPipeline pipeline(pcfg);
    const auto report = pipeline.Process(x);

    const auto timing = rfdump::core::ScoreDetections(
        ether.truth(), rfdump::core::Protocol::kWifi80211b, report.detections,
        total, "80211-sifs-timing");
    const auto phase = rfdump::core::ScoreDetections(
        ether.truth(), rfdump::core::Protocol::kWifi80211b, report.detections,
        total, "dbpsk-phase");
    std::printf("%6.1f %10zu %18s %18s\n", snr, timing.truth_packets,
                bench::FmtRate(timing.MissRate()).c_str(),
                bench::FmtRate(phase.MissRate()).c_str());
  }
  std::printf("\npaper shape: ~0 miss above 9 dB, sharp rise below;\n"
              "phase knee slightly above the timing knee.\n");
  return 0;
}
