// Link chaos recovery: the transport counterpart to fault_tolerance. A
// 3-sensor fleet (skewed clocks, shared synthetic truth) runs through the
// same seeded fault profiles the chaos test sweeps (drop / duplicate /
// reorder / corrupt / partition), and for each profile we measure how much
// the reliability layer had to work (retransmits, gap reports) and how much
// of the published truth the fused view recovered.
//
// Reads like: recovery stays at 1.000 except for frames the sensors
// *explicitly* declared lost (ring overflow under sustained loss); nothing
// corrupt is ever accepted, and duplicates never fuse twice.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rfdump/net/fleet.hpp"

namespace {

namespace core = rfdump::core;
namespace net = rfdump::net;

constexpr std::int64_t kSamplesPerTick = 8000;
constexpr std::int64_t kEventSpacing = 10'000;  // >> dedup slack (64)
constexpr std::size_t kSensors = 3;

struct Profile {
  const char* name;
  std::uint64_t seed;
  net::FaultyLink::Config link;
  std::vector<net::FaultyLink::Config::Window> partitions0;  // sensor 0 only
};

std::vector<Profile> Profiles() {
  std::vector<Profile> out;
  auto add = [&](const char* name, std::uint64_t seed, double drop, double dup,
                 double reorder, double corrupt) {
    Profile p;
    p.name = name;
    p.seed = seed;
    p.link.drop_rate = drop;
    p.link.duplicate_rate = dup;
    p.link.reorder_rate = reorder;
    p.link.corrupt_rate = corrupt;
    p.link.reorder_max_ticks = 6;
    out.push_back(p);
  };
  add("clean", 200, 0.0, 0.0, 0.0, 0.0);
  add("light-drop", 201, 0.10, 0.0, 0.0, 0.0);
  add("heavy-drop", 202, 0.30, 0.0, 0.0, 0.0);
  add("brutal-drop", 203, 0.50, 0.0, 0.0, 0.0);
  add("duplicates", 204, 0.0, 0.30, 0.0, 0.0);
  add("reorder", 205, 0.0, 0.0, 0.40, 0.0);
  add("corrupt", 206, 0.0, 0.0, 0.0, 0.20);
  add("kitchen-sink", 207, 0.25, 0.25, 0.25, 0.25);
  add("partition", 208, 0.0, 0.0, 0.0, 0.0);
  out.back().partitions0 = {{10, 30}};
  return out;
}

net::EventRecord TrueEvent(std::size_t index, std::int64_t clock_offset) {
  net::EventRecord e;
  e.protocol = core::Protocol::kWifi80211b;
  e.channel = -1;
  const std::int64_t true_start =
      100'000 + static_cast<std::int64_t>(index) * kEventSpacing;
  e.start_sample = true_start + clock_offset;
  e.end_sample = e.start_sample + 2'000;
  e.payload_bytes = 100;
  e.crc_ok = true;
  e.payload_digest = 0xE000000 + index;
  return e;
}

bool InRanges(const std::vector<net::SeqRange>& ranges, std::uint32_t seq) {
  for (const auto& r : ranges) {
    if (seq >= r.first && seq <= r.last) return true;
  }
  return false;
}

struct ProfileResult {
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t lost_frames = 0;  // explicitly declared + applied
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t corrupt_dropped = 0;
  std::size_t events_expected = 0;  // published minus declared-lost frames
  std::size_t events_fused = 0;
  bool exact = false;  // fused set == expected set
};

ProfileResult RunProfile(const Profile& profile, int publish_ticks) {
  const std::int64_t offsets[kSensors] = {900, -1'300, 4'000};
  net::Fleet::Config cfg;
  cfg.samples_per_tick = kSamplesPerTick;
  cfg.aggregator.trust_floor = 0.0;  // measure transport, not trust policy
  cfg.sensors.resize(kSensors);
  for (std::size_t i = 0; i < kSensors; ++i) {
    auto& s = cfg.sensors[i];
    s.id = static_cast<std::uint16_t>(i);
    s.clock_offset_samples = offsets[i];
    s.seed = profile.seed * 10 + i;
    s.uplink = profile.link;
    s.downlink = profile.link;
    s.session.retransmit_ring = 32;
    if (i == 0) {
      s.uplink.partitions = profile.partitions0;
      s.downlink.partitions = profile.partitions0;
    }
  }
  net::Fleet fleet(cfg);

  // Calibrate clocks before chaos (same discipline as the chaos test).
  fleet.SetLossless(true);
  fleet.Run(8);
  fleet.SetLossless(false);

  // seq -> digests per sensor (gap reports consume seqs too, so the batch's
  // actual sequence number comes from Publish).
  std::map<std::uint32_t, std::vector<std::uint64_t>> published[kSensors];
  std::size_t next_event = 0;
  for (int t = 0; t < publish_ticks; ++t) {
    std::vector<net::EventRecord> heard[kSensors];
    for (int k = 0; k < 2; ++k) {
      for (std::size_t i = 0; i < kSensors; ++i) {
        heard[i].push_back(TrueEvent(next_event, offsets[i]));
      }
      ++next_event;
    }
    for (std::size_t i = 0; i < kSensors; ++i) {
      std::vector<std::uint64_t> digests;
      for (const auto& e : heard[i]) digests.push_back(e.payload_digest);
      const auto seq =
          fleet.Publish(i, heard[i].front().start_sample, heard[i]);
      published[i][seq] = digests;
    }
    fleet.Tick();
  }
  fleet.SetLossless(true);
  fleet.Run(200);

  ProfileResult r;
  auto& agg = fleet.aggregator();
  std::set<std::uint64_t> expected;
  for (std::size_t i = 0; i < kSensors; ++i) {
    const auto st = fleet.session(i).stats();
    r.frames_sent += st.frames_sent;
    r.retransmits += st.retransmits;
    const auto& as = agg.status(fleet.sensor_id(i));
    r.frames_delivered += as.frames_delivered;
    r.duplicates_dropped += as.duplicates_dropped;
    r.corrupt_dropped += as.corrupt_dropped;
    for (const auto& range : as.lost_applied) {
      r.lost_frames += range.last - range.first + 1;
    }
    for (const auto& [seq, digests] : published[i]) {
      if (InRanges(as.lost_applied, seq)) continue;
      expected.insert(digests.begin(), digests.end());
    }
  }
  std::set<std::uint64_t> fused;
  for (const auto& f : agg.fused()) fused.insert(f.payload_digest);
  r.events_expected = expected.size();
  r.events_fused = fused.size();
  r.exact = fused == expected;
  return r;
}

}  // namespace

int main() {
  bench::PrintHeader("Link chaos recovery (multi-sensor fleet robustness)");
  const int publish_ticks = static_cast<int>(bench::Scaled(80));
  std::printf("fleet: %zu sensors, %d publish ticks x 2 events/sensor\n\n",
              kSensors, publish_ticks);
  std::printf("%-14s %7s %7s %7s %6s %6s %6s %11s %6s\n", "profile", "sent",
              "retx", "deliv", "lost", "dup", "crpt", "fused/exp", "exact");

  std::vector<std::string> rows;
  for (const auto& profile : Profiles()) {
    const auto r = RunProfile(profile, publish_ticks);
    std::printf("%-14s %7llu %7llu %7llu %6llu %6llu %6llu %5zu/%-5zu %6s\n",
                profile.name, static_cast<unsigned long long>(r.frames_sent),
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.frames_delivered),
                static_cast<unsigned long long>(r.lost_frames),
                static_cast<unsigned long long>(r.duplicates_dropped),
                static_cast<unsigned long long>(r.corrupt_dropped),
                r.events_fused, r.events_expected, r.exact ? "yes" : "NO");
    rows.push_back(bench::JsonObj({
        {"profile", bench::JsonStr(profile.name)},
        {"seed", bench::JsonInt(static_cast<long long>(profile.seed))},
        {"drop_rate", bench::JsonNum(profile.link.drop_rate)},
        {"duplicate_rate", bench::JsonNum(profile.link.duplicate_rate)},
        {"reorder_rate", bench::JsonNum(profile.link.reorder_rate)},
        {"corrupt_rate", bench::JsonNum(profile.link.corrupt_rate)},
        {"partitioned", profile.partitions0.empty() ? "false" : "true"},
        {"frames_sent", bench::JsonInt(static_cast<long long>(r.frames_sent))},
        {"retransmits", bench::JsonInt(static_cast<long long>(r.retransmits))},
        {"frames_delivered",
         bench::JsonInt(static_cast<long long>(r.frames_delivered))},
        {"lost_frames", bench::JsonInt(static_cast<long long>(r.lost_frames))},
        {"duplicates_dropped",
         bench::JsonInt(static_cast<long long>(r.duplicates_dropped))},
        {"corrupt_dropped",
         bench::JsonInt(static_cast<long long>(r.corrupt_dropped))},
        {"events_fused",
         bench::JsonInt(static_cast<long long>(r.events_fused))},
        {"events_expected",
         bench::JsonInt(static_cast<long long>(r.events_expected))},
        {"exact_recovery", r.exact ? "true" : "false"},
    }));
  }

  bench::WriteBenchJson(
      "link_chaos",
      bench::JsonObj({
          {"bench", bench::JsonStr("link_chaos")},
          {"scale", bench::JsonNum(bench::Scale())},
          {"sensors", bench::JsonInt(static_cast<long long>(kSensors))},
          {"publish_ticks", bench::JsonInt(publish_ticks)},
          {"profiles", bench::JsonArr(rows)},
      }));
  return 0;
}
