// Ablation: Bluetooth session cache (paper §4.4). The slot-timing detector
// consults a small cache of active sessions before searching the peak-start
// history; the cache turns the common case into O(cache) instead of
// O(history). This bench measures hit rates and detector time with the cache
// disabled and at several sizes.

#include <chrono>

#include "bench_common.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/core/timing_detectors.hpp"

namespace {
namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
}  // namespace

int main() {
  bench::PrintHeader("Ablation - Bluetooth session cache");

  // Two interleaved Bluetooth sessions plus Wi-Fi chatter stressing the
  // history search.
  rfdump::emu::Ether ether;
  rfdump::traffic::L2PingConfig b1;
  b1.count = bench::Scaled(400);
  b1.flow_id = 10;
  rfdump::traffic::L2PingConfig b2;
  b2.count = bench::Scaled(400);
  b2.address = {0x55AA11, 0x21};
  b2.clk_start = 5000;
  b2.flow_id = 11;
  rfdump::traffic::WifiPingConfig w;
  w.count = bench::Scaled(20);
  w.interval_us = 60000.0;
  const auto s1 = rfdump::traffic::GenerateL2Ping(ether, b1, 8000);
  rfdump::traffic::GenerateL2Ping(ether, b2, 8000 + 2500);
  rfdump::traffic::GenerateUnicastPing(ether, w, 16000);
  const auto x = ether.Render(s1.end_sample + 8000);
  const auto total = static_cast<std::int64_t>(x.size());

  // Peak detection once, shared by all configurations.
  core::PeakDetector det;
  for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
    det.PushChunk(dsp::const_sample_span(x).subspan(
                      at, std::min(core::kChunkSamples, x.size() - at)),
                  static_cast<std::int64_t>(at));
  }
  det.Flush();
  std::vector<core::Peak> peaks(det.history().begin(), det.history().end());

  std::printf("%12s %10s %12s %14s %12s %10s\n", "cache size", "hits",
              "history srch", "detector time", "miss rate", "tags");
  for (std::size_t cache : {0u, 1u, 2u, 4u, 8u}) {
    core::BluetoothTimingDetector::Config cfg;
    cfg.cache_size = cache;
    core::BluetoothTimingDetector timing(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<core::Detection> detections;
    // Feed peaks one at a time to model the streaming pattern.
    for (const auto& p : peaks) {
      auto d = timing.OnPeaks(std::span<const core::Peak>(&p, 1));
      detections.insert(detections.end(), d.begin(), d.end());
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto score = core::ScoreDetections(
        ether.truth(), core::Protocol::kBluetooth, detections, total,
        "bt-slot-timing");
    std::printf("%9zu%s %10llu %12llu %13.5fs %12s %10zu\n", cache,
                cache == 4 ? "*" : " ",
                static_cast<unsigned long long>(timing.cache_hits()),
                static_cast<unsigned long long>(timing.history_searches()),
                secs, bench::FmtRate(score.MissRate()).c_str(),
                detections.size());
  }
  std::printf("\nwith the cache, repeat packets of an active session hit in\n"
              "O(cache) and the full history search runs only on new "
              "sessions.\n");
  return 0;
}
