// Observability overhead: proves the instrumentation budget (<2% of block
// CPU, DESIGN.md §8) on the Table-1 workload.
//
// Strategy: a single binary cannot compile both RFDUMP_OBS modes, so the
// bench (a) microbenchmarks each primitive the hot paths actually use
// (Counter::Inc, Histogram::Observe, a TraceSpan with the tracer disabled —
// the production default) and (b) counts how many such events one pipeline
// pass over the Table-1 capture really emits (registry deltas). The product
// is the instrumentation's share of the measured block CPU. Run with
// -DRFDUMP_OBS=OFF the primitives compile to no-ops and the share is ~0.

// Fleet mode (DESIGN.md §13) prices what the fleet observability layer
// adds to the *session* hot path — wire-propagated trace context under
// disabled LinkedSpans plus per-heartbeat MetricsMsg snapshots — by
// differencing two otherwise identical single-sensor fleet loops
// (federation on vs off) and charging the result against the same block
// CPU denominator. Both costs together must stay under the 2% budget.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rfdump/net/fleet.hpp"
#include "rfdump/obs/obs.hpp"

namespace {

namespace obs = rfdump::obs;
namespace dsp = rfdump::dsp;

/// Counts counter *mutations* (Inc calls) since the last ResetAll(), from
/// the registry's exposition text. Every counter in the codebase increments
/// by 1 per call — value == call count — EXCEPT the `*_samples_total`
/// family, which does one bulk Inc(n) per entry point (per pipeline pass /
/// per demod region); those contribute one atomic op per call, not per
/// sample, and are charged separately by the caller.
std::uint64_t PerCallCounterEvents() {
  std::istringstream in(obs::Registry::Default().ExpositionText());
  std::uint64_t events = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const auto brace = name.find('{');
    if (brace != std::string::npos) name.resize(brace);
    if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      continue;
    }
    if (name.size() >= 14 &&
        name.compare(name.size() - 14, 14, "_samples_total") == 0) {
      continue;  // bulk Inc(n): one op per call site invocation, see caller
    }
    events += static_cast<std::uint64_t>(std::atof(line.c_str() + space + 1));
  }
  return events;
}

double NsPerOp(double seconds, std::uint64_t ops) {
  return ops > 0 ? seconds * 1e9 / static_cast<double>(ops) : 0.0;
}

/// One single-sensor fleet pumped for `ticks` lockstep ticks, publishing a
/// small event batch every tick (fault-free links, so both runs see the
/// same frame schedule). Returns wall seconds; reports snapshots shipped.
double FleetLoopSeconds(bool federation, int ticks,
                        std::uint64_t* snapshots_out) {
  namespace net = rfdump::net;
  net::Fleet::Config fcfg;
  fcfg.sensors.resize(1);
  fcfg.sensors[0].id = 0;
  fcfg.sensors[0].seed = 9;
  if (federation) fcfg.sensors[0].session.metrics_every_n_heartbeats = 1;
  net::Fleet fleet(fcfg);
  fleet.Run(4);  // connect before timing

  std::vector<net::EventRecord> batch(8);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].protocol = rfdump::core::Protocol::kWifi80211b;
    batch[i].payload_bytes = 64;
    batch[i].crc_ok = true;
  }
  obs::Stopwatch w;
  for (int t = 0; t < ticks; ++t) {
    for (auto& e : batch) {
      e.start_sample = static_cast<std::int64_t>(t) * 8000;
      e.end_sample = e.start_sample + 640;
    }
    fleet.Publish(0, static_cast<std::int64_t>(t) * 8000, batch);
    fleet.Tick();
  }
  const double s = w.Seconds();
  if (snapshots_out != nullptr) {
    *snapshots_out = fleet.session(0).stats().metrics_snapshots;
  }
  return s;
}

}  // namespace

int main() {
  bench::PrintHeader("Observability overhead on the Table-1 workload");
#if RFDUMP_OBS_ENABLED
  std::printf("compiled mode: RFDUMP_OBS=ON (instrumentation live)\n\n");
#else
  std::printf("compiled mode: RFDUMP_OBS=OFF (instrumentation compiled out)\n\n");
#endif

  // --- Primitive costs -----------------------------------------------------
  obs::Counter& c = obs::Registry::Default().GetCounter("bench_scratch_total");
  obs::Histogram& hist = obs::Registry::Default().GetHistogram(
      "bench_scratch_hist", {0.1, 0.5, 1.0, 2.0});

  constexpr std::uint64_t kIncOps = 20'000'000;
  obs::Stopwatch w;
  for (std::uint64_t i = 0; i < kIncOps; ++i) c.Inc();
  const double t_inc = NsPerOp(w.Seconds(), kIncOps);

  constexpr std::uint64_t kObsOps = 5'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kObsOps; ++i) {
    hist.Observe(static_cast<double>(i & 3) * 0.4);
  }
  const double t_observe = NsPerOp(w.Seconds(), kObsOps);

  constexpr std::uint64_t kSpanOps = 20'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kSpanOps; ++i) {
    RFDUMP_TRACE_SPAN("bench/disabled");
  }
  const double t_span_off = NsPerOp(w.Seconds(), kSpanOps);

  obs::Tracer::Default().Enable(1 << 12);
  constexpr std::uint64_t kSpanOnOps = 2'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kSpanOnOps; ++i) {
    RFDUMP_TRACE_SPAN("bench/enabled");
  }
  const double t_span_on = NsPerOp(w.Seconds(), kSpanOnOps);
  obs::Tracer::Default().Disable();

  std::printf("%-38s %8.2f ns/op\n", "Counter::Inc (relaxed fetch_add)", t_inc);
  std::printf("%-38s %8.2f ns/op\n", "Histogram::Observe (4 buckets)",
              t_observe);
  std::printf("%-38s %8.2f ns/op\n", "TraceSpan, tracer disabled (default)",
              t_span_off);
  std::printf("%-38s %8.2f ns/op\n\n", "TraceSpan, tracer enabled", t_span_on);

  // --- Event volume + pipeline cost on the Table-1 capture -----------------
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(60);
  wcfg.interval_us = 14000.0;
  wcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(40);
  bcfg.snr_db = 25.0;
  rfdump::traffic::GenerateL2Ping(ether, bcfg, 12000);
  const auto x = ether.Render(ws.end_sample + 8000);
  const double real_seconds =
      static_cast<double>(x.size()) / dsp::kSampleRateHz;

  rfdump::core::RFDumpPipeline::Config cfg;
  cfg.microwave_detector = true;
  {
    rfdump::core::RFDumpPipeline warmup(cfg);
    (void)warmup.Process(x);  // touch caches, resolve metric statics
  }
  obs::Registry::Default().ResetAll();
  w.Reset();
  rfdump::core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(x);
  const double pipeline_seconds = w.Seconds();
  const std::uint64_t per_call_events = PerCallCounterEvents();

  // Bulk Inc(n) call sites (`*_samples_total`) fire at region granularity —
  // at most once per 200-sample chunk is a generous upper bound. Spans sit
  // at stage granularity (CostLedger scopes + demod entry points).
  const std::uint64_t bulk_calls = obs::Registry::Default().CounterValue(
      "rfdump_peaks_chunks_total");
  const std::uint64_t span_sites = report.costs.size() + 4;
  const std::uint64_t events = per_call_events + bulk_calls;

  const double instr_seconds =
      (static_cast<double>(events) * t_inc +
       static_cast<double>(span_sites) * t_span_off) *
      1e-9;
  const double share =
      pipeline_seconds > 0.0 ? instr_seconds / pipeline_seconds : 0.0;

  std::printf("capture: %.3f s of ether; pipeline CPU %.3f s (%.3fx real "
              "time)\n", real_seconds, pipeline_seconds,
              pipeline_seconds / real_seconds);
  std::printf("counter events in one pass: %llu (%.1f per 1k samples)\n",
              static_cast<unsigned long long>(events),
              1000.0 * static_cast<double>(events) /
                  static_cast<double>(x.size()));
  std::printf("estimated instrumentation cost: %.6f s = %.4f%% of block CPU\n",
              instr_seconds, share * 100.0);
  const bool pass = share < 0.02;
  std::printf("\nbudget <2%% of block CPU: %s\n", pass ? "PASS" : "FAIL");

  // --- Fleet mode: session-path cost of the fleet observability layer ------
  // Difference two identical single-sensor fleet loops: federation on
  // (a MetricsMsg snapshot with every heartbeat, the densest cadence the
  // CLI uses) minus federation off. The diff is the full round trip —
  // delta selection, encode, CRC, aggregator parse + ApplyMetrics. The
  // trace-context cost is NOT in the diff (the wire format always carries
  // it); it is charged as the disabled-LinkedSpan walk, 3 spans per block
  // (flush -> publish -> fuse). Both are scaled to one second of ether
  // (1000 ticks; a 50 ms block cadence = 20 blocks) and charged against
  // the pipeline CPU the same second of ether costs.
  const int kFleetTicks = static_cast<int>(bench::Scaled(16'000));
  std::uint64_t snapshots = 0;
  double t_fed_on = 1e300, t_fed_off = 1e300;
  for (int r = 0; r < 3; ++r) {  // best-of: squeezes out scheduler noise
    t_fed_off = std::min(t_fed_off, FleetLoopSeconds(false, kFleetTicks,
                                                     nullptr));
    t_fed_on = std::min(t_fed_on, FleetLoopSeconds(true, kFleetTicks,
                                                   &snapshots));
  }
  const double metrics_per_tick =
      std::max(0.0, (t_fed_on - t_fed_off) / kFleetTicks);
  const double ns_per_snapshot =
      snapshots > 0
          ? std::max(0.0, t_fed_on - t_fed_off) * 1e9 /
                static_cast<double>(snapshots)
          : 0.0;
  constexpr double kTicksPerEtherSecond = 1000.0;  // 1 ms fleet ticks
  constexpr double kBlocksPerEtherSecond = 20.0;   // 50 ms blocks
  const double fleet_instr_per_second =
      kTicksPerEtherSecond * metrics_per_tick +
      kBlocksPerEtherSecond * 3.0 * t_span_off * 1e-9;
  const double pipeline_per_second =
      real_seconds > 0.0 ? pipeline_seconds / real_seconds : 0.0;
  const double fleet_share = pipeline_per_second > 0.0
                                 ? fleet_instr_per_second / pipeline_per_second
                                 : 0.0;

  std::printf("\nfleet mode (%d ticks, %llu metrics snapshots):\n",
              kFleetTicks, static_cast<unsigned long long>(snapshots));
  std::printf("%-38s %8.2f ns\n", "metrics snapshot round trip",
              ns_per_snapshot);
  std::printf("fleet obs cost per ether-second: %.6f s vs pipeline %.3f s "
              "= %.4f%%\n",
              fleet_instr_per_second, pipeline_per_second,
              fleet_share * 100.0);
  const bool fleet_pass = fleet_share < 0.02;
  std::printf("fleet budget <2%% of block CPU: %s\n",
              fleet_pass ? "PASS" : "FAIL");

  bench::WriteBenchJson(
      "obs_overhead",
      bench::JsonObj({
          {"bench", bench::JsonStr("obs_overhead")},
          {"obs_enabled", bench::JsonInt(RFDUMP_OBS_ENABLED)},
          {"counter_inc_ns", bench::JsonNum(t_inc)},
          {"histogram_observe_ns", bench::JsonNum(t_observe)},
          {"span_disabled_ns", bench::JsonNum(t_span_off)},
          {"span_enabled_ns", bench::JsonNum(t_span_on)},
          {"pipeline_share", bench::JsonNum(share)},
          {"metrics_snapshot_ns", bench::JsonNum(ns_per_snapshot)},
          {"fleet_share", bench::JsonNum(fleet_share)},
          {"budget", bench::JsonNum(0.02)},
          {"pass", bench::JsonInt(pass && fleet_pass ? 1 : 0)},
      }));
  return pass && fleet_pass ? 0 : 1;
}
