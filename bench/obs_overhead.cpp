// Observability overhead: proves the instrumentation budget (<2% of block
// CPU, DESIGN.md §8) on the Table-1 workload.
//
// Strategy: a single binary cannot compile both RFDUMP_OBS modes, so the
// bench (a) microbenchmarks each primitive the hot paths actually use
// (Counter::Inc, Histogram::Observe, a TraceSpan with the tracer disabled —
// the production default) and (b) counts how many such events one pipeline
// pass over the Table-1 capture really emits (registry deltas). The product
// is the instrumentation's share of the measured block CPU. Run with
// -DRFDUMP_OBS=OFF the primitives compile to no-ops and the share is ~0.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "rfdump/obs/obs.hpp"

namespace {

namespace obs = rfdump::obs;
namespace dsp = rfdump::dsp;

/// Counts counter *mutations* (Inc calls) since the last ResetAll(), from
/// the registry's exposition text. Every counter in the codebase increments
/// by 1 per call — value == call count — EXCEPT the `*_samples_total`
/// family, which does one bulk Inc(n) per entry point (per pipeline pass /
/// per demod region); those contribute one atomic op per call, not per
/// sample, and are charged separately by the caller.
std::uint64_t PerCallCounterEvents() {
  std::istringstream in(obs::Registry::Default().ExpositionText());
  std::uint64_t events = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const auto brace = name.find('{');
    if (brace != std::string::npos) name.resize(brace);
    if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      continue;
    }
    if (name.size() >= 14 &&
        name.compare(name.size() - 14, 14, "_samples_total") == 0) {
      continue;  // bulk Inc(n): one op per call site invocation, see caller
    }
    events += static_cast<std::uint64_t>(std::atof(line.c_str() + space + 1));
  }
  return events;
}

double NsPerOp(double seconds, std::uint64_t ops) {
  return ops > 0 ? seconds * 1e9 / static_cast<double>(ops) : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Observability overhead on the Table-1 workload");
#if RFDUMP_OBS_ENABLED
  std::printf("compiled mode: RFDUMP_OBS=ON (instrumentation live)\n\n");
#else
  std::printf("compiled mode: RFDUMP_OBS=OFF (instrumentation compiled out)\n\n");
#endif

  // --- Primitive costs -----------------------------------------------------
  obs::Counter& c = obs::Registry::Default().GetCounter("bench_scratch_total");
  obs::Histogram& hist = obs::Registry::Default().GetHistogram(
      "bench_scratch_hist", {0.1, 0.5, 1.0, 2.0});

  constexpr std::uint64_t kIncOps = 20'000'000;
  obs::Stopwatch w;
  for (std::uint64_t i = 0; i < kIncOps; ++i) c.Inc();
  const double t_inc = NsPerOp(w.Seconds(), kIncOps);

  constexpr std::uint64_t kObsOps = 5'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kObsOps; ++i) {
    hist.Observe(static_cast<double>(i & 3) * 0.4);
  }
  const double t_observe = NsPerOp(w.Seconds(), kObsOps);

  constexpr std::uint64_t kSpanOps = 20'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kSpanOps; ++i) {
    RFDUMP_TRACE_SPAN("bench/disabled");
  }
  const double t_span_off = NsPerOp(w.Seconds(), kSpanOps);

  obs::Tracer::Default().Enable(1 << 12);
  constexpr std::uint64_t kSpanOnOps = 2'000'000;
  w.Reset();
  for (std::uint64_t i = 0; i < kSpanOnOps; ++i) {
    RFDUMP_TRACE_SPAN("bench/enabled");
  }
  const double t_span_on = NsPerOp(w.Seconds(), kSpanOnOps);
  obs::Tracer::Default().Disable();

  std::printf("%-38s %8.2f ns/op\n", "Counter::Inc (relaxed fetch_add)", t_inc);
  std::printf("%-38s %8.2f ns/op\n", "Histogram::Observe (4 buckets)",
              t_observe);
  std::printf("%-38s %8.2f ns/op\n", "TraceSpan, tracer disabled (default)",
              t_span_off);
  std::printf("%-38s %8.2f ns/op\n\n", "TraceSpan, tracer enabled", t_span_on);

  // --- Event volume + pipeline cost on the Table-1 capture -----------------
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(60);
  wcfg.interval_us = 14000.0;
  wcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(40);
  bcfg.snr_db = 25.0;
  rfdump::traffic::GenerateL2Ping(ether, bcfg, 12000);
  const auto x = ether.Render(ws.end_sample + 8000);
  const double real_seconds =
      static_cast<double>(x.size()) / dsp::kSampleRateHz;

  rfdump::core::RFDumpPipeline::Config cfg;
  cfg.microwave_detector = true;
  {
    rfdump::core::RFDumpPipeline warmup(cfg);
    (void)warmup.Process(x);  // touch caches, resolve metric statics
  }
  obs::Registry::Default().ResetAll();
  w.Reset();
  rfdump::core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(x);
  const double pipeline_seconds = w.Seconds();
  const std::uint64_t per_call_events = PerCallCounterEvents();

  // Bulk Inc(n) call sites (`*_samples_total`) fire at region granularity —
  // at most once per 200-sample chunk is a generous upper bound. Spans sit
  // at stage granularity (CostLedger scopes + demod entry points).
  const std::uint64_t bulk_calls = obs::Registry::Default().CounterValue(
      "rfdump_peaks_chunks_total");
  const std::uint64_t span_sites = report.costs.size() + 4;
  const std::uint64_t events = per_call_events + bulk_calls;

  const double instr_seconds =
      (static_cast<double>(events) * t_inc +
       static_cast<double>(span_sites) * t_span_off) *
      1e-9;
  const double share =
      pipeline_seconds > 0.0 ? instr_seconds / pipeline_seconds : 0.0;

  std::printf("capture: %.3f s of ether; pipeline CPU %.3f s (%.3fx real "
              "time)\n", real_seconds, pipeline_seconds,
              pipeline_seconds / real_seconds);
  std::printf("counter events in one pass: %llu (%.1f per 1k samples)\n",
              static_cast<unsigned long long>(events),
              1000.0 * static_cast<double>(events) /
                  static_cast<double>(x.size()));
  std::printf("estimated instrumentation cost: %.6f s = %.4f%% of block CPU\n",
              instr_seconds, share * 100.0);
  const bool pass = share < 0.02;
  std::printf("\nbudget <2%% of block CPU: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
