// Fault tolerance and graceful degradation: the robustness counterpart to
// Figure 9. A fixed 802.11 ping workload is replayed through increasingly
// hostile front ends (USB-overrun drops, ADC clipping, NaN bursts) and
// monitored with the fault-tolerant streaming path; then the same workload
// is monitored under shrinking CPU budgets to show the load-shedding
// staircase (full pipeline -> optional detectors off -> confident-tags-only
// demod -> detection-only).
//
// Reads like: gaps are reported exactly, decode rate degrades in proportion
// to the samples actually lost (not catastrophically), and the shedding
// controller trades fidelity for CPU in the paper's priority order.

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/frontend.hpp"

namespace {

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;

struct Workload {
  dsp::SampleVec samples;
  std::size_t truth_frames = 0;
};

Workload MakeWorkload() {
  emu::Ether ether(emu::Ether::Config{}, 12);
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = bench::Scaled(40);
  cfg.interval_us = 12000.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  Workload w;
  w.samples = ether.Render(session.end_sample + 8000);
  w.truth_frames = session.packets;
  return w;
}

struct RunResult {
  std::size_t decoded = 0;
  std::size_t gaps = 0;
  std::int64_t lost = 0;
  std::uint64_t sanitized = 0;
  double load = 0.0;
  int max_stage = 0;
};

RunResult Run(const Workload& w, const emu::FrontEnd::Config& fcfg,
              double budget) {
  emu::FrontEnd fe(w.samples, fcfg, 7);
  core::StreamingMonitor::Config mcfg;
  mcfg.block_samples = 400'000;
  mcfg.cpu_budget = budget;
  if (fcfg.clip_amplitude > 0.0f) {
    mcfg.pipeline.saturation_amplitude = fcfg.clip_amplitude;
  }
  core::StreamingMonitor monitor(mcfg);
  RunResult r;
  monitor.on_wifi_frame =
      [&](const rfdump::phy80211::DecodedFrame&) { ++r.decoded; };
  while (!fe.Done()) {
    const auto seg = fe.NextSegment();
    if (!seg.samples.empty()) monitor.PushSegment(seg.start_sample, seg.samples);
  }
  monitor.Flush();
  r.gaps = monitor.gaps().size();
  for (const auto& g : monitor.gaps()) r.lost += g.missing;
  for (const auto& h : monitor.health()) {
    r.sanitized += h.sanitized_samples;
    r.max_stage = std::max(r.max_stage, h.shed_stage);
  }
  r.load = monitor.CpuOverRealTime();
  return r;
}

}  // namespace

int main() {
  bench::PrintHeader("Fault tolerance & graceful degradation (robustness)");
  const auto w = MakeWorkload();
  std::printf("workload: %zu ground-truth 802.11 frames over %.2f s\n\n",
              w.truth_frames,
              static_cast<double>(w.samples.size()) / dsp::kSampleRateHz);

  std::printf("-- impairment sweep (no CPU budget) --\n");
  std::printf("%-22s %8s %6s %10s %10s %8s\n", "front end", "decoded",
              "gaps", "lost-smpl", "sanitized", "load");
  struct Level {
    const char* name;
    double drops;
    double nans;
    float clip;
  };
  const Level levels[] = {
      {"ideal", 0.0, 0.0, 0.0f},
      {"mild (1 drop/s)", 1.0, 2.0, 0.0f},
      {"moderate (+clip)", 4.0, 10.0, 22.0f},
      {"hostile (8 drop/s)", 8.0, 40.0, 18.0f},
  };
  std::vector<std::string> impairment_rows;
  for (const auto& lvl : levels) {
    emu::FrontEnd::Config fcfg;
    fcfg.drops_per_second = lvl.drops;
    fcfg.nonfinite_per_second = lvl.nans;
    fcfg.clip_amplitude = lvl.clip;
    fcfg.duplicates_per_second = lvl.drops > 0 ? 1.0 : 0.0;
    const auto r = Run(w, fcfg, /*budget=*/0.0);
    std::printf("%-22s %4zu/%-3zu %6zu %10lld %10llu %8.3f\n", lvl.name,
                r.decoded, w.truth_frames, r.gaps,
                static_cast<long long>(r.lost),
                static_cast<unsigned long long>(r.sanitized), r.load);
    impairment_rows.push_back(bench::JsonObj({
        {"front_end", bench::JsonStr(lvl.name)},
        {"decoded", bench::JsonInt(static_cast<long long>(r.decoded))},
        {"gaps", bench::JsonInt(static_cast<long long>(r.gaps))},
        {"lost_samples", bench::JsonInt(r.lost)},
        {"sanitized_samples",
         bench::JsonInt(static_cast<long long>(r.sanitized))},
        {"load", bench::JsonNum(r.load)},
    }));
  }

  std::printf("\n-- load shedding sweep (ideal front end) --\n");
  std::printf("%-22s %8s %10s %8s\n", "budget (cpu/real)", "decoded",
              "max-stage", "load");
  const double budgets[] = {0.0, 1.5, 0.75, 0.30, 0.10, 0.02};
  std::vector<std::string> shedding_rows;
  for (const double b : budgets) {
    const auto r = Run(w, emu::FrontEnd::Config{}, b);
    char name[32];
    if (b == 0.0) {
      std::snprintf(name, sizeof(name), "unlimited");
    } else {
      std::snprintf(name, sizeof(name), "%.2f", b);
    }
    std::printf("%-22s %4zu/%-3zu %10d %8.3f\n", name, r.decoded,
                w.truth_frames, r.max_stage, r.load);
    shedding_rows.push_back(bench::JsonObj({
        {"budget", bench::JsonNum(b)},
        {"decoded", bench::JsonInt(static_cast<long long>(r.decoded))},
        {"max_shed_stage", bench::JsonInt(r.max_stage)},
        {"load", bench::JsonNum(r.load)},
    }));
  }

  bench::WriteBenchJson(
      "fault_tolerance",
      bench::JsonObj({
          {"bench", bench::JsonStr("fault_tolerance")},
          {"scale", bench::JsonNum(bench::Scale())},
          {"truth_frames",
           bench::JsonInt(static_cast<long long>(w.truth_frames))},
          {"impairment_sweep", bench::JsonArr(impairment_rows)},
          {"shedding_sweep", bench::JsonArr(shedding_rows)},
      }));
  return 0;
}
