// Headline throughput: how many times faster than real time the full
// rfdump pipeline chews through 8 Msps ether, at analysis widths 1/4/8.
//
// This is the repo's first headline x-realtime number (ROADMAP: "no
// x-realtime throughput measured"): a Table-3-style traffic mix (the
// richest dispatched-interval population) is rendered once, then the whole
// pipeline — detection cascade + demodulator bank — runs end-to-end per
// width, best-of-3. Results land in BENCH_throughput.json; there is no
// hard gate (absolute numbers are machine-dependent), the bench only
// fails if a width produces a different report than the serial run.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "rfdump/core/executor.hpp"
#include "rfdump/obs/obs.hpp"

namespace {

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

}  // namespace

int main() {
  bench::PrintHeader("Pipeline throughput vs real time (8 Msps equivalent)");

  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(40);
  wcfg.interval_us = 14000.0;
  wcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(60);
  bcfg.snr_db = 25.0;
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bcfg, 12000);
  const auto x = ether.Render(std::max(ws.end_sample, bs.end_sample) + 8000);
  const double real_seconds =
      static_cast<double>(x.size()) / dsp::kSampleRateHz;
  std::printf("capture: %.3f s of ether (%zu samples @ %.0f Msps)\n\n",
              real_seconds, x.size(), dsp::kSampleRateHz / 1e6);

  const int widths[] = {1, 4, 8};
  constexpr int kReps = 3;  // best-of: squeezes out scheduler noise
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  struct Row {
    int threads = 0;
    double wall_seconds = 0.0;
    double x_realtime = 0.0;
    bool skipped = false;  // width > hardware threads: no scaling signal
  };
  std::vector<Row> rows;
  std::size_t serial_wifi = 0, serial_bt = 0, serial_det = 0;
  bool identical = true;

  for (const int width : widths) {
    // A width the host cannot actually provision would just timeslice one
    // core and report a meaningless "parallel" row; record it as skipped so
    // the JSON carries no fake scaling signal (width 1 always runs).
    if (width > 1 && static_cast<unsigned>(width) > hw) {
      rows.push_back({width, 0.0, 0.0, true});
      std::printf("--threads %-2d  skipped (only %u hardware thread%s)\n",
                  width, hw, hw == 1 ? "" : "s");
      continue;
    }
    core::Executor executor(width);
    core::RFDumpPipeline::Config cfg;
    cfg.microwave_detector = true;
    cfg.executor = &executor;
    core::RFDumpPipeline pipeline(cfg);
    (void)pipeline.Process(x);  // warm caches before timing

    double best = 1e300;
    core::MonitorReport report;
    for (int r = 0; r < kReps; ++r) {
      rfdump::obs::Stopwatch w;
      auto rep = pipeline.Process(x);
      best = std::min(best, w.Seconds());
      report = std::move(rep);
    }
    const double xrt = best > 0.0 ? real_seconds / best : 0.0;
    rows.push_back({width, best, xrt, false});
    std::printf("--threads %-2d  wall %8.4f s  ->  %6.2fx real time "
                "(%zu wifi / %zu bt / %zu detections)\n",
                width, best, xrt, report.wifi_frames.size(),
                report.bt_packets.size(), report.detections.size());
    if (width == 1) {
      serial_wifi = report.wifi_frames.size();
      serial_bt = report.bt_packets.size();
      serial_det = report.detections.size();
    } else if (report.wifi_frames.size() != serial_wifi ||
               report.bt_packets.size() != serial_bt ||
               report.detections.size() != serial_det) {
      identical = false;
    }
  }

  double headline = 0.0;
  for (const auto& r : rows) {
    if (!r.skipped) headline = std::max(headline, r.x_realtime);
  }
  std::printf("\nheadline: %.2fx real time (best provisioned width on %u "
              "hardware threads)\n", headline, hw);
  std::printf("reports identical across widths: %s\n",
              identical ? "PASS" : "FAIL");

  std::vector<std::string> width_objs;
  for (const auto& r : rows) {
    if (r.skipped) {
      width_objs.push_back(bench::JsonObj({
          {"threads", bench::JsonInt(r.threads)},
          {"skipped", "true"},
          {"reason", bench::JsonStr("width exceeds hardware_threads")},
      }));
      continue;
    }
    width_objs.push_back(bench::JsonObj({
        {"threads", bench::JsonInt(r.threads)},
        {"wall_seconds", bench::JsonNum(r.wall_seconds)},
        {"x_realtime", bench::JsonNum(r.x_realtime)},
    }));
  }
  bench::WriteBenchJson(
      "throughput",
      bench::JsonObj({
          {"bench", bench::JsonStr("throughput")},
          {"scale", bench::JsonNum(bench::Scale())},
          {"sample_rate_hz", bench::JsonNum(dsp::kSampleRateHz)},
          {"capture_seconds", bench::JsonNum(real_seconds)},
          {"hardware_threads", bench::JsonInt(hw)},
          {"widths", bench::JsonArr(width_objs)},
          {"headline_x_realtime", bench::JsonNum(headline)},
      }));
  return identical ? 0 : 1;
}
