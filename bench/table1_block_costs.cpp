// Table 1: CPU time / real time of individual GNU-Radio-style blocks.
//
// Paper (2.13 GHz Core 2 Duo):     802.11 demod 0.6x, Bluetooth demod 0.7x,
//                                  peak/energy detection 0.05x.
// We reproduce the *ordering and ratios*: both demodulators are ~10x or more
// the cost of peak/energy detection.

#include <chrono>
#include <functional>

#include "bench_common.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/phy80211/demodulator.hpp"
#include "rfdump/phybt/demodulator.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace dsp = rfdump::dsp;

double Time(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 1 - CPU time / real time of individual blocks");

  // Representative capture: unicast pings at ~30% utilization.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wcfg;
  wcfg.count = bench::Scaled(60);
  wcfg.interval_us = 14000.0;
  wcfg.snr_db = 25.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wcfg, 8000);
  rfdump::traffic::L2PingConfig bcfg;
  bcfg.count = bench::Scaled(40);
  bcfg.snr_db = 25.0;
  rfdump::traffic::GenerateL2Ping(ether, bcfg, 12000);
  const auto x = ether.Render(ws.end_sample + 8000);
  const double real_seconds =
      static_cast<double>(x.size()) / dsp::kSampleRateHz;
  const double util =
      rfdump::emu::MediumUtilization(ether.truth(),
                                     static_cast<std::int64_t>(x.size()));
  std::printf("capture: %.3f s of ether at %.0f Msps, utilization %.0f%%\n\n",
              real_seconds, dsp::kSampleRateHz / 1e6, util * 100.0);

  // 802.11 demodulation over the full stream.
  std::size_t wifi_frames = 0;
  const double t_wifi = Time([&] {
    rfdump::phy80211::Demodulator demod;
    wifi_frames = demod.DecodeAll(x).size();
  });

  // Bluetooth demodulation (all 8 visible channels) over the full stream.
  std::size_t bt_pkts = 0;
  const double t_bt = Time([&] {
    rfdump::phybt::Demodulator demod;
    bt_pkts = demod.DecodeAll(x).size();
  });

  // Peak / energy detection.
  std::size_t peaks = 0;
  const double t_peak = Time([&] {
    rfdump::core::PeakDetector det;
    for (std::size_t at = 0; at < x.size(); at += rfdump::core::kChunkSamples) {
      const std::size_t n =
          std::min(rfdump::core::kChunkSamples, x.size() - at);
      det.PushChunk(dsp::const_sample_span(x).subspan(at, n),
                    static_cast<std::int64_t>(at));
    }
    det.Flush();
    peaks = det.history().size();
  });

  std::printf("%-34s %14s %10s\n", "GNU Radio Block", "CPU/Real time",
              "output");
  std::printf("%-34s %14.3f %7zu frames\n", "802.11 demodulation (1 Mbps)",
              t_wifi / real_seconds, wifi_frames);
  std::printf("%-34s %14.3f %7zu pkts\n", "Bluetooth demodulation (8 ch)",
              t_bt / real_seconds, bt_pkts);
  std::printf("%-34s %14.3f %7zu peaks\n", "Peak/Energy detection",
              t_peak / real_seconds, peaks);
  std::printf("\npaper: 0.6 / 0.7 / 0.05  (2.13 GHz Core 2 Duo, 1 core)\n");
  std::printf("demod-to-peak cost ratios: 802.11 %.0fx, Bluetooth %.0fx\n",
              t_wifi / t_peak, t_bt / t_peak);
  return 0;
}
