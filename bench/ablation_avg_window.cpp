// Ablation: peak-detector averaging window (paper §4.3). The paper picked
// 20 samples (2.5 us): long enough that noise does not split one packet into
// several peaks, short enough to resolve the 10 us SIFS gap between a data
// frame and its ACK. This sweep measures both failure modes.

#include "bench_common.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/core/timing_detectors.hpp"

namespace {
namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation - peak averaging window (paper default: 20 = 2.5 us)");

  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig cfg;
  cfg.count = bench::Scaled(60);
  cfg.interval_us = 15000.0;
  cfg.snr_db = 8.0;  // near the knee, where the window choice matters
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
  const auto x = ether.Render(session.end_sample + 8000);
  const auto total = static_cast<std::int64_t>(x.size());
  const auto truth_packets =
      core::VisibleTruthWithin(ether.truth(), core::Protocol::kWifi80211b,
                               total)
          .size();

  std::printf("true packets: %zu\n\n", truth_packets);
  std::printf("%8s %8s %16s\n", "window", "peaks", "SIFS-timing miss");
  for (std::size_t window : {5u, 10u, 20u, 40u, 80u, 160u}) {
    core::PeakDetector::Config pcfg;
    pcfg.averaging_window = window;
    core::PeakDetector det(pcfg);
    for (std::size_t at = 0; at < x.size(); at += core::kChunkSamples) {
      det.PushChunk(dsp::const_sample_span(x).subspan(
                        at, std::min(core::kChunkSamples, x.size() - at)),
                    static_cast<std::int64_t>(at));
    }
    det.Flush();
    core::WifiTimingDetector timing;
    std::vector<core::Peak> peaks(det.history().begin(), det.history().end());
    const auto detections = timing.OnPeaks(peaks);
    const auto score = core::ScoreDetections(
        ether.truth(), core::Protocol::kWifi80211b, detections, total,
        "80211-sifs-timing");
    std::printf("%7zu%s %8zu %16s\n", window, window == 20 ? "*" : " ",
                det.history().size(),
                bench::FmtRate(score.MissRate()).c_str());
  }
  std::printf("\ntiny windows split packets at low SNR (peak count inflates);"
              "\nhuge windows smear the SIFS gap (misses rise).\n");
  return 0;
}
