// google-benchmark microbenches of the DSP primitives, each reported with a
// derived "x real time" counter against the 8 Msps front-end rate. These are
// the per-sample costs Table 1 and Figure 9 are built from.

#include <benchmark/benchmark.h>

#include "rfdump/channel/channel.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/dsp/barker.hpp"
#include "rfdump/dsp/fft.hpp"
#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/resampler.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/util/rng.hpp"

namespace dsp = rfdump::dsp;

namespace {

dsp::SampleVec NoiseBuffer(std::size_t n, std::uint64_t seed) {
  dsp::SampleVec x(n);
  rfdump::util::Xoshiro256 rng(seed);
  rfdump::channel::AddAwgn(x, 1.0, rng);
  return x;
}

void SetRealTimeRate(benchmark::State& state, std::size_t samples_per_iter) {
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples_per_iter) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["x_realtime"] = benchmark::Counter(
      static_cast<double>(samples_per_iter) *
          static_cast<double>(state.iterations()) / dsp::kSampleRateHz,
      benchmark::Counter::kIsRate);
}

void BM_Fft256(benchmark::State& state) {
  dsp::FftPlan plan(256);
  auto x = NoiseBuffer(256, 1);
  for (auto _ : state) {
    plan.Forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  SetRealTimeRate(state, 256);
}
BENCHMARK(BM_Fft256);

void BM_FirFilter21(benchmark::State& state) {
  dsp::FirFilter fir(dsp::DesignLowPass(600e3, 8e6, 21));
  const auto x = NoiseBuffer(8192, 2);
  dsp::SampleVec out;
  for (auto _ : state) {
    out.clear();
    fir.Process(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_FirFilter21);

void BM_PhaseDiff(benchmark::State& state) {
  const auto x = NoiseBuffer(8192, 3);
  for (auto _ : state) {
    auto d = dsp::PhaseDiff(x);
    benchmark::DoNotOptimize(d.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_PhaseDiff);

void BM_Resampler11over8(benchmark::State& state) {
  dsp::RationalResampler rs(11, 8);
  const auto x = NoiseBuffer(8192, 4);
  dsp::SampleVec out;
  for (auto _ : state) {
    out.clear();
    rs.Process(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_Resampler11over8);

void BM_BarkerCorrelate(benchmark::State& state) {
  const auto x = NoiseBuffer(8192, 5);
  for (auto _ : state) {
    auto c = dsp::CorrelateChips(x, dsp::kBarker11);
    benchmark::DoNotOptimize(c.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_BarkerCorrelate);

void BM_PeakDetector(benchmark::State& state) {
  const auto x = NoiseBuffer(65536, 6);
  for (auto _ : state) {
    rfdump::core::PeakDetector det;
    for (std::size_t at = 0; at < x.size(); at += rfdump::core::kChunkSamples) {
      det.PushChunk(dsp::const_sample_span(x).subspan(
                        at, std::min(rfdump::core::kChunkSamples,
                                     x.size() - at)),
                    static_cast<std::int64_t>(at));
    }
    benchmark::DoNotOptimize(det.CompletedCount());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_PeakDetector);

void BM_GfskModulate(benchmark::State& state) {
  rfdump::util::BitVec bits(366);
  rfdump::util::Xoshiro256 rng(7);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  for (auto _ : state) {
    auto burst = rfdump::phybt::GfskModulate(bits);
    benchmark::DoNotOptimize(burst.data());
  }
  SetRealTimeRate(state, 366 * rfdump::phybt::kSamplesPerSymbol);
}
BENCHMARK(BM_GfskModulate);

void BM_PhaseInfo(benchmark::State& state) {
  const auto x = NoiseBuffer(2048, 8);
  for (auto _ : state) {
    auto info = rfdump::core::ComputePhaseInfo(x, 2048, 4);
    benchmark::DoNotOptimize(&info);
  }
  SetRealTimeRate(state, 2048);
}
BENCHMARK(BM_PhaseInfo);

void BM_Awgn(benchmark::State& state) {
  dsp::SampleVec x(8192);
  rfdump::util::Xoshiro256 rng(9);
  for (auto _ : state) {
    rfdump::channel::AddAwgn(x, 1.0, rng);
    benchmark::DoNotOptimize(x.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_Awgn);

}  // namespace

BENCHMARK_MAIN();
