// google-benchmark microbenches of the DSP primitives, each reported with a
// derived "x real time" counter against the 8 Msps front-end rate. These are
// the per-sample costs Table 1 and Figure 9 are built from.
//
// main() first runs the scalar-vs-SIMD kernel speedup table (DESIGN.md §16)
// and writes it to BENCH_micro_dsp.json; the binary exits nonzero unless at
// least two of {barker, energy, fir, gfsk-discriminator} reach a 2x speedup
// over the scalar conformance tier. The google-benchmark suites run after.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "rfdump/channel/channel.hpp"
#include "rfdump/core/peaks.hpp"
#include "rfdump/core/phase_detectors.hpp"
#include "rfdump/dsp/barker.hpp"
#include "rfdump/dsp/fft.hpp"
#include "rfdump/dsp/fir.hpp"
#include "rfdump/dsp/phase.hpp"
#include "rfdump/dsp/resampler.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/phybt/gfsk.hpp"
#include "rfdump/util/rng.hpp"

namespace dsp = rfdump::dsp;

namespace {

dsp::SampleVec NoiseBuffer(std::size_t n, std::uint64_t seed) {
  dsp::SampleVec x(n);
  rfdump::util::Xoshiro256 rng(seed);
  rfdump::channel::AddAwgn(x, 1.0, rng);
  return x;
}

void SetRealTimeRate(benchmark::State& state, std::size_t samples_per_iter) {
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples_per_iter) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["x_realtime"] = benchmark::Counter(
      static_cast<double>(samples_per_iter) *
          static_cast<double>(state.iterations()) / dsp::kSampleRateHz,
      benchmark::Counter::kIsRate);
}

void BM_Fft256(benchmark::State& state) {
  dsp::FftPlan plan(256);
  auto x = NoiseBuffer(256, 1);
  for (auto _ : state) {
    plan.Forward(x);
    benchmark::DoNotOptimize(x.data());
  }
  SetRealTimeRate(state, 256);
}
BENCHMARK(BM_Fft256);

void BM_FirFilter21(benchmark::State& state) {
  dsp::FirFilter fir(dsp::DesignLowPass(600e3, 8e6, 21));
  const auto x = NoiseBuffer(8192, 2);
  dsp::SampleVec out;
  for (auto _ : state) {
    out.clear();
    fir.Process(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_FirFilter21);

void BM_PhaseDiff(benchmark::State& state) {
  const auto x = NoiseBuffer(8192, 3);
  for (auto _ : state) {
    auto d = dsp::PhaseDiff(x);
    benchmark::DoNotOptimize(d.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_PhaseDiff);

void BM_Resampler11over8(benchmark::State& state) {
  dsp::RationalResampler rs(11, 8);
  const auto x = NoiseBuffer(8192, 4);
  dsp::SampleVec out;
  for (auto _ : state) {
    out.clear();
    rs.Process(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_Resampler11over8);

void BM_BarkerCorrelate(benchmark::State& state) {
  const auto x = NoiseBuffer(8192, 5);
  for (auto _ : state) {
    auto c = dsp::CorrelateChips(x, dsp::kBarker11);
    benchmark::DoNotOptimize(c.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_BarkerCorrelate);

void BM_PeakDetector(benchmark::State& state) {
  const auto x = NoiseBuffer(65536, 6);
  for (auto _ : state) {
    rfdump::core::PeakDetector det;
    for (std::size_t at = 0; at < x.size(); at += rfdump::core::kChunkSamples) {
      det.PushChunk(dsp::const_sample_span(x).subspan(
                        at, std::min(rfdump::core::kChunkSamples,
                                     x.size() - at)),
                    static_cast<std::int64_t>(at));
    }
    benchmark::DoNotOptimize(det.CompletedCount());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_PeakDetector);

void BM_GfskModulate(benchmark::State& state) {
  rfdump::util::BitVec bits(366);
  rfdump::util::Xoshiro256 rng(7);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  for (auto _ : state) {
    auto burst = rfdump::phybt::GfskModulate(bits);
    benchmark::DoNotOptimize(burst.data());
  }
  SetRealTimeRate(state, 366 * rfdump::phybt::kSamplesPerSymbol);
}
BENCHMARK(BM_GfskModulate);

void BM_PhaseInfo(benchmark::State& state) {
  const auto x = NoiseBuffer(2048, 8);
  for (auto _ : state) {
    auto info = rfdump::core::ComputePhaseInfo(x, 2048, 4);
    benchmark::DoNotOptimize(&info);
  }
  SetRealTimeRate(state, 2048);
}
BENCHMARK(BM_PhaseInfo);

void BM_Awgn(benchmark::State& state) {
  dsp::SampleVec x(8192);
  rfdump::util::Xoshiro256 rng(9);
  for (auto _ : state) {
    rfdump::channel::AddAwgn(x, 1.0, rng);
    benchmark::DoNotOptimize(x.data());
  }
  SetRealTimeRate(state, x.size());
}
BENCHMARK(BM_Awgn);

// ------------------------------------------------- kernel speedup table
// Times each dsp::simd kernel once through the scalar table and once through
// the best supported tier (function pointers taken directly from Table(), so
// the global dispatch state is untouched) and writes the per-kernel speedups
// to BENCH_micro_dsp.json.

namespace simd = rfdump::dsp::simd;

/// Best-of-reps seconds per call of `f` (amortized over `inner` calls).
template <class F>
double TimeKernel(F&& f, int inner = 64, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    rfdump::obs::Stopwatch w;
    for (int i = 0; i < inner; ++i) f();
    best = std::min(best, w.Seconds() / inner);
  }
  return best;
}

struct KernelRow {
  const char* kernel = "";
  bool gate_member = false;  // counts toward the 2-of-4 speedup gate
  double scalar_ns_per_sample = 0.0;
  double simd_ns_per_sample = 0.0;
  double speedup = 0.0;
};

int RunSpeedupTable() {
  bench::PrintHeader("DSP kernel speedup: scalar conformance tier vs best "
                     "dispatch tier");
  const simd::Tier best_tier = simd::DetectBestTier();
  const simd::Kernels& scalar = simd::Table(simd::Tier::kScalar);
  const simd::Kernels& fast = simd::Table(best_tier);
  std::printf("best tier: %s\n\n", simd::TierName(best_tier));

  constexpr std::size_t kN = 8192;
  const auto x = NoiseBuffer(kN, 42);
  const auto taps = dsp::DesignLowPass(600e3, dsp::kSampleRateHz, 21);
  dsp::SampleVec cout_buf(kN);
  std::vector<float> fout_buf(kN);

  std::vector<KernelRow> rows;
  auto measure = [&](const char* name, bool gate_member, auto&& run) {
    KernelRow row;
    row.kernel = name;
    row.gate_member = gate_member;
    row.scalar_ns_per_sample =
        TimeKernel([&] { run(scalar); }) * 1e9 / static_cast<double>(kN);
    row.simd_ns_per_sample =
        TimeKernel([&] { run(fast); }) * 1e9 / static_cast<double>(kN);
    row.speedup = row.simd_ns_per_sample > 0.0
                      ? row.scalar_ns_per_sample / row.simd_ns_per_sample
                      : 0.0;
    std::printf("%-20s scalar %7.3f ns/sample  %s %7.3f ns/sample  -> "
                "%5.2fx%s\n",
                name, row.scalar_ns_per_sample, simd::TierName(best_tier),
                row.simd_ns_per_sample, row.speedup,
                gate_member ? "  [gate]" : "");
    rows.push_back(row);
  };

  measure("barker", true, [&](const simd::Kernels& k) {
    k.correlate_chips(x.data(), kN - dsp::kBarker11.size() + 1,
                      dsp::kBarker11.data(), dsp::kBarker11.size(),
                      cout_buf.data());
    benchmark::DoNotOptimize(cout_buf.data());
  });
  measure("energy", true, [&](const simd::Kernels& k) {
    double e = k.sum_finite_power(x.data(), kN);
    benchmark::DoNotOptimize(e);
  });
  measure("fir", true, [&](const simd::Kernels& k) {
    k.fir_complex(x.data(), kN - taps.size() + 1, taps.data(), taps.size(),
                  cout_buf.data());
    benchmark::DoNotOptimize(cout_buf.data());
  });
  measure("gfsk-discriminator", true, [&](const simd::Kernels& k) {
    k.phase_diff(x.data(), kN, fout_buf.data());
    benchmark::DoNotOptimize(fout_buf.data());
  });
  measure("instant-phase", false, [&](const simd::Kernels& k) {
    k.instant_phase(x.data(), kN, fout_buf.data());
    benchmark::DoNotOptimize(fout_buf.data());
  });
  measure("power-plane", false, [&](const simd::Kernels& k) {
    k.power_plane(x.data(), kN, fout_buf.data());
    benchmark::DoNotOptimize(fout_buf.data());
  });
  measure("health-scan", false, [&](const simd::Kernels& k) {
    std::uint64_t nonfinite = 0, saturated = 0;
    k.health_scan(x.data(), kN, 0.98f * 64.0f, &nonfinite, &saturated);
    benchmark::DoNotOptimize(nonfinite + saturated);
  });
  measure("conj-mul-sum", false, [&](const simd::Kernels& k) {
    dsp::cfloat s = k.conj_mul_sum(x.data(), kN);
    benchmark::DoNotOptimize(&s);
  });

  int gate_hits = 0;
  for (const auto& r : rows) {
    if (r.gate_member && r.speedup >= 2.0) ++gate_hits;
  }
  const bool gate_ok = gate_hits >= 2;
  std::printf("\ngate: %d of 4 gate kernels at >=2x (need 2): %s\n", gate_hits,
              gate_ok ? "PASS" : "FAIL");

  std::vector<std::string> kernel_objs;
  for (const auto& r : rows) {
    kernel_objs.push_back(bench::JsonObj({
        {"kernel", bench::JsonStr(r.kernel)},
        {"gate_member", r.gate_member ? "true" : "false"},
        {"scalar_ns_per_sample", bench::JsonNum(r.scalar_ns_per_sample)},
        {"simd_ns_per_sample", bench::JsonNum(r.simd_ns_per_sample)},
        {"speedup", bench::JsonNum(r.speedup)},
    }));
  }
  bench::WriteBenchJson(
      "micro_dsp",
      bench::JsonObj({
          {"bench", bench::JsonStr("micro_dsp")},
          {"samples", bench::JsonInt(static_cast<long long>(kN))},
          {"best_tier", bench::JsonStr(simd::TierName(best_tier))},
          {"kernels", bench::JsonArr(kernel_objs)},
          {"gate_kernels_at_2x", bench::JsonInt(gate_hits)},
          {"gate_passed", gate_ok ? "true" : "false"},
      }));
  std::printf("\n");
  return gate_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int gate = RunSpeedupTable();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return gate;
}
