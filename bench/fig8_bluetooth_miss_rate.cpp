// Figure 8: Bluetooth microbenchmark — packet miss rate vs SNR for the
// slot-timing detector and the GFSK-phase detector, on l2ping traffic
// (DH5 packets, sizes 225-339 B encoding sequence numbers, hopping over all
// 79 channels with 8 visible).
//
// Paper: timing detector has a small nonzero floor even at high SNR (it
// always misses the first packet of a session) but works down to ~6 dB
// thanks to Bluetooth's constant-envelope modulation; the phase detector is
// exact at high SNR and works down to ~9 dB.

#include "bench_common.hpp"

int main() {
  bench::PrintHeader("Figure 8 - Bluetooth l2ping: packet miss rate vs SNR");
  std::printf("%6s %10s %18s %18s\n", "SNR", "visible", "slot-timing miss",
              "GFSK-phase miss");

  const double snrs[] = {0, 3, 5, 6, 7, 8, 9, 10, 12, 15, 20, 25, 30};
  for (const double snr : snrs) {
    rfdump::emu::Ether ether;
    rfdump::traffic::L2PingConfig cfg;
    // Paper sent 6000 pings over all channels; we default to 1/10 via the
    // common scale plus a 0.2 factor to bound the single-core runtime.
    cfg.count = bench::Scaled(1200);
    cfg.snr_db = snr;
    const auto session = rfdump::traffic::GenerateL2Ping(ether, cfg, 8000);
    const auto x = ether.Render(session.end_sample + 8000);
    const auto total = static_cast<std::int64_t>(x.size());

    rfdump::core::RFDumpPipeline::Config pcfg;
    pcfg.analysis.demodulate = false;
    rfdump::core::RFDumpPipeline pipeline(pcfg);
    const auto report = pipeline.Process(x);

    const auto timing = rfdump::core::ScoreDetections(
        ether.truth(), rfdump::core::Protocol::kBluetooth, report.detections,
        total, "bt-slot-timing");
    const auto phase = rfdump::core::ScoreDetections(
        ether.truth(), rfdump::core::Protocol::kBluetooth, report.detections,
        total, "gfsk-phase");
    std::printf("%6.1f %10zu %18s %18s\n", snr, timing.truth_packets,
                bench::FmtRate(timing.MissRate()).c_str(),
                bench::FmtRate(phase.MissRate()).c_str());
  }
  std::printf("\npaper shape: timing floor ~1e-4 at high SNR (first packet of\n"
              "each session), usable to ~6 dB; phase exact at high SNR,\n"
              "usable to ~9 dB.\n");
  return 0;
}
