// Table 4: real-world trace — selectivity of the DBPSK phase detector on a
// campus-style trace with multi-rate 802.11b traffic.
//
// Paper: 646 packets (all with PLCP headers at 1 Mbps), 106 of them entirely
// at 1 Mbps (3.97% of trace samples); an ideal header-only filter passes
// 0.35%; the DBPSK detector passed 6.05% vs 4.32% for the combined ideal
// filter (1 Mbps packets + headers of everything else).
//
// Here the trace is synthesized by the campus generator: beacons, ARPs and
// unicast exchanges at mixed 1/2/5.5/11 Mbps rates, plus Bluetooth. Because
// 2 Mbps frames are Barker-chipped end to end, the detector legitimately
// passes them whole too; the "ideal Barker" row accounts for that.

#include <cmath>
#include <cstring>

#include "bench_common.hpp"

int main() {
  bench::PrintHeader("Table 4 - real-world (campus) trace selectivity");

  rfdump::emu::Ether ether;
  rfdump::traffic::CampusConfig cfg;
  cfg.duration_sec = 0.5 + bench::Scale();
  const auto session = rfdump::traffic::GenerateCampus(ether, cfg, 4000);
  const auto x = ether.Render(session.end_sample + 8000);
  const auto total = static_cast<std::int64_t>(x.size());

  // Ground-truth census over the 802.11 packets.
  std::size_t pkts_total = 0, pkts_1m = 0, pkts_barker = 0;
  std::int64_t samples_1m = 0, samples_barker = 0, samples_headers = 0;
  const std::int64_t header_samples = rfdump::dsp::MicrosToSamples(192.0);
  for (const auto& r : ether.truth()) {
    if (!r.visible || r.protocol != rfdump::core::Protocol::kWifi80211b ||
        r.end_sample > total) {
      continue;
    }
    ++pkts_total;
    const bool is_1m = r.kind.find("@1Mbps") != std::string::npos;
    const bool is_2m = r.kind.find("@2Mbps") != std::string::npos;
    const std::int64_t len = r.end_sample - r.start_sample;
    if (is_1m) {
      ++pkts_1m;
      samples_1m += len;
    }
    if (is_1m || is_2m) {
      ++pkts_barker;
      samples_barker += len;
    } else {
      samples_headers += std::min(len, header_samples);
    }
  }

  // Run the phase detector alone (the paper's DBPSK detector experiment).
  rfdump::core::RFDumpPipeline::Config pcfg;
  pcfg.timing_detectors = false;
  pcfg.phase_detectors = true;
  pcfg.analysis.demodulate = false;
  rfdump::core::RFDumpPipeline pipeline(pcfg);
  const auto report = pipeline.Process(x);
  std::int64_t detector_samples = 0;
  {
    std::vector<rfdump::core::Detection> wifi_only;
    for (const auto& d : report.detections) {
      if (d.protocol == rfdump::core::Protocol::kWifi80211b &&
          std::strcmp(d.detector, "dbpsk-phase") == 0) {
        wifi_only.push_back(d);
      }
    }
    const auto merged =
        rfdump::core::MergeDetections(std::move(wifi_only), 0, total);
    detector_samples = rfdump::core::CoverageSamples(merged);
  }

  const auto pct = [&](std::int64_t samples) {
    return 100.0 * static_cast<double>(samples) / static_cast<double>(total);
  };
  std::printf("trace: %.3f s, %zu 802.11 packets (every one carries a 1 Mbps "
              "PLCP header)\n\n",
              static_cast<double>(total) / rfdump::dsp::kSampleRateHz,
              pkts_total);
  std::printf("%-34s %10s %10s %12s\n", "Filter", "# PLCP", "# packets",
              "% of trace");
  std::printf("%-34s %10zu %10zu %11.2f%%\n", "Full trace", pkts_total,
              pkts_total, 100.0);
  std::printf("%-34s %10zu %10zu %11.2f%%\n", "Ideal 1 Mbps only", pkts_total,
              pkts_1m, pct(samples_1m));
  std::printf("%-34s %10zu %10zu %11.2f%%\n", "Ideal headers only", pkts_total,
              std::size_t{0}, pct(samples_headers));
  std::printf("%-34s %10zu %10zu %11.2f%%\n",
              "Ideal Barker (1+2 Mbps + headers)", pkts_total, pkts_barker,
              pct(samples_barker + samples_headers));
  std::printf("%-34s %10s %10s %11.2f%%\n", "DBPSK phase detector", "-", "-",
              pct(detector_samples));
  std::printf("\npaper: full 100%%, ideal-1Mbps 3.97%%, ideal-headers 0.35%%,"
              " detector 6.05%% vs ideal 4.32%%\n");
  std::printf("expected: detector %% slightly above the ideal Barker %% "
              "(chunk-granularity padding), far below 100%%\n");
  return 0;
}
