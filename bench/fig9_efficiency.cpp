// Figure 9: efficiency — CPU time / real time vs medium utilization for all
// nine monitoring configurations:
//   naive; naive+energy; naive+energy (no demod);
//   RFDump timing / phase / timing+phase, each with and without demodulation.
//
// Paper: naive is flat around 7x real time; energy detection scales with
// utilization and converges toward naive when the ether is busy; RFDump is
// ~2x cheaper than energy-gated and >=3x cheaper than naive, and detection
// without demodulation is far below real time.
//
// Workload (like the paper): 802.11 (1 Mbps) unicast pings with varying
// inter-ping spacing to reach different utilizations; analysis bank is one
// 802.11 demodulator + 8 Bluetooth demodulators (one per visible channel).

#include "bench_common.hpp"

namespace {

using rfdump::core::MonitorReport;
namespace core = rfdump::core;

struct Config {
  const char* name;
  bool is_rfdump;
  bool energy_gate;     // naive only
  bool timing, phase;   // rfdump only
  bool demod;
};

MonitorReport Run(const Config& cfg, rfdump::dsp::const_sample_span x) {
  core::AnalysisConfig analysis;
  analysis.demodulate = cfg.demod;
  if (cfg.is_rfdump) {
    core::RFDumpPipeline::Config pcfg;
    pcfg.timing_detectors = cfg.timing;
    pcfg.phase_detectors = cfg.phase;
    pcfg.analysis = analysis;
    return core::RFDumpPipeline(pcfg).Process(x);
  }
  core::NaivePipeline::Config ncfg;
  ncfg.energy_gate = cfg.energy_gate;
  ncfg.analysis = analysis;
  return core::NaivePipeline(ncfg).Process(x);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 9 - CPU time / real time vs medium utilization");

  const Config configs[] = {
      {"naive", false, false, false, false, true},
      {"naive+energy", false, true, false, false, true},
      {"energy no-demod", false, true, false, false, false},
      {"RFDump timing", true, false, true, false, true},
      {"RFDump phase", true, false, false, true, true},
      {"RFDump t+p", true, false, true, true, true},
      {"timing no-demod", true, false, true, false, false},
      {"phase no-demod", true, false, false, true, false},
      {"t+p no-demod", true, false, true, true, false},
  };

  // Inter-ping spacing (us) chosen to sweep utilization; one ping cycle is
  // ~9.6 ms of airtime (two 500 B frames + two ACKs).
  const double intervals[] = {200000, 100000, 48000, 24000, 16000, 12000,
                              10500};

  std::printf("%-18s", "util%");
  std::vector<double> utils;
  std::vector<rfdump::dsp::SampleVec> traces;
  std::vector<std::vector<rfdump::emu::TruthRecord>> truths;
  for (const double interval : intervals) {
    rfdump::emu::Ether ether;
    rfdump::traffic::WifiPingConfig cfg;
    cfg.count = bench::Scaled(50);
    cfg.snr_db = 25.0;
    cfg.interval_us = interval;
    const auto session =
        rfdump::traffic::GenerateUnicastPing(ether, cfg, 8000);
    auto x = ether.Render(session.end_sample + 8000);
    const double util = rfdump::emu::MediumUtilization(
        ether.truth(), static_cast<std::int64_t>(x.size()));
    utils.push_back(util * 100.0);
    std::printf(" %8.1f", util * 100.0);
    traces.push_back(std::move(x));
    truths.push_back(ether.truth());
  }
  std::printf("\n");

  for (const Config& cfg : configs) {
    std::printf("%-18s", cfg.name);
    std::fflush(stdout);
    for (const auto& x : traces) {
      const auto report = Run(cfg, x);
      std::printf(" %8.2f", report.CpuOverRealTime());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\npaper shape: naive flat & highest; energy-gated scales with\n"
              "utilization toward naive; RFDump ~2x under energy-gated and\n"
              ">=3x under naive; no-demod detection far below real time.\n");
  return 0;
}
