// rfdump — the command-line monitor itself, tcpdump-style.
//
// Reads a recorded IQ trace (or synthesizes a demo ether with `--demo`) and
// prints every classified transmission. Architecture and detector selection
// mirror the paper's configurations.
//
// Usage:
//   example_rfdump_cli --demo                          # synthesize + monitor
//   example_rfdump_cli -r trace.iq                     # monitor a trace
//   example_rfdump_cli -r trace.iq --arch naive        # naive baseline
//   example_rfdump_cli -r trace.iq --no-demod          # detection only
//   example_rfdump_cli -r trace.iq --detectors timing  # timing|phase|both
//   example_rfdump_cli -r trace.iq --stats             # per-stage CPU costs
//   example_rfdump_cli -r trace.iq --protocols wifi,ble  # bundle selection

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rfdump/core/executor.hpp"
#include "rfdump/core/pipeline.hpp"
#include "rfdump/dsp/simd.hpp"
#include "rfdump/obs/obs.hpp"
#include "rfdump/core/spectrogram.hpp"
#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/frontend.hpp"
#include "rfdump/net/endpoint.hpp"
#include "rfdump/net/fleet.hpp"
#include "rfdump/net/tcp.hpp"
#include "rfdump/trace/pcap.hpp"
#include "rfdump/mac80211/frames.hpp"
#include "rfdump/testing/differential.hpp"
#include "rfdump/testing/fuzz.hpp"
#include "rfdump/testing/replay.hpp"
#include "rfdump/trace/trace.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

namespace {

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [-r trace.iq | --demo] [options]\n"
      "  -r FILE            read IQ samples from FILE\n"
      "  --demo             synthesize a demo ether instead of reading\n"
      "  --arch A           rfdump (default) | naive | energy\n"
      "  --detectors D      both (default) | timing | phase\n"
      "  --protocols LIST   comma-separated protocol bundles to enable\n"
      "  --simd TIER        force the DSP kernel dispatch tier:\n"
      "                     scalar|sse2|avx2|auto (default: RFDUMP_SIMD env\n"
      "                     or CPU detection; all tiers are bit-identical)\n"
      "                     (names from the registry, e.g. wifi,bt,ble;\n"
      "                     unknown names exit 2; default = every bundle\n"
      "                     registered as enabled-by-default)\n"
      "  --no-demod         detection stage only\n"
      "  --threads N        analysis worker threads (default 1 = serial;\n"
      "                     0 = one per hardware thread). Results are\n"
      "                     identical at every width; only wall time moves\n"
      "  --collisions       enable collision detection\n"
      "  --stats            print per-stage CPU costs\n"
      "  --waterfall        print an ASCII spectrogram of the band\n"
      "  --pcap FILE        export decoded 802.11 frames as pcap\n"
      "  --noise-floor P    noise floor power (default 1.0)\n"
      "  --impair           replay through a hostile front end (USB-overrun\n"
      "                     drops, ADC clipping, DC offset, NaN bursts) and\n"
      "                     monitor it with the fault-tolerant streaming\n"
      "                     path; prints per-block health\n"
      "  --budget R         CPU/real-time budget per block for load shedding\n"
      "                     (streaming path only; 0 = no shedding)\n"
      "  --deadline S       CPU-seconds deadline per supervised analysis\n"
      "                     interval (streaming path only; 0 = unlimited)\n"
      "  --quarantine DIR   write each quarantined interval (a failed\n"
      "                     analysis: deadline blown or demodulator threw)\n"
      "                     to DIR as an .iq snippet plus a one-line JSON\n"
      "                     sidecar (stream offset, protocol, outcome), so\n"
      "                     the poison input can be replayed with -r\n"
      "  --metrics DEST     dump the metrics registry (Prometheus text\n"
      "                     format) to DEST on exit; `-` means stdout. With\n"
      "                     --impair and a file DEST, the file is also\n"
      "                     rewritten periodically while blocks stream. In\n"
      "                     fleet mode DEST gets the aggregator's federated\n"
      "                     exposition (every sensor under sensor=\"<id>\")\n"
      "  --trace FILE       record spans and write Trace Event Format JSON\n"
      "                     to FILE (load in chrome://tracing or Perfetto).\n"
      "                     In fleet mode FILE is the merged fleet trace:\n"
      "                     one process row per sensor plus the aggregator,\n"
      "                     with sensor->aggregator span links\n"
      "  --fleet N          replay the input through N skewed sensors (mild\n"
      "                     chaos on sensor 0's links) feeding one central\n"
      "                     aggregator; prints the fused ether-wide view\n"
      "  --fleet-status     with --fleet: print the one-screen fleet status\n"
      "                     table after each sensor's replay and at exit\n"
      "  --fleet-status=json  machine-readable final status instead\n"
      "  --listen HOST:PORT run the central aggregator over real TCP:\n"
      "                     accept sensors, fuse their event streams, print\n"
      "                     the fused summary once every expected sensor has\n"
      "                     drained and disconnected. --metrics DEST gets\n"
      "                     the federated exposition. Port 0 = ephemeral\n"
      "  --connect HOST:PORT  monitor the input (-r/--demo) and stream the\n"
      "                     classified events to a --listen aggregator as\n"
      "                     sensor --sensor-id, riding out resets via the\n"
      "                     session's retransmit ring + backoff redial\n"
      "  --sensor-id K      sensor id for --connect (default 0)\n"
      "  --expect N         sensors --listen waits for before the fused\n"
      "                     summary (default 1)\n"
      "  --port-file FILE   with --listen: write the bound port to FILE\n"
      "                     once accepting (scripts discover ephemeral\n"
      "                     ports this way)\n"
      "  --max-seconds S    wall-clock bound for --listen/--connect\n"
      "                     (default 120; exit 1 on timeout)\n"
      "  --selftest         run the conformance harness: a naive-vs-rfdump\n"
      "                     differential sweep over canned scenarios plus\n"
      "                     the checked-in fuzz corpus; exit nonzero on any\n"
      "                     mismatch, crash, or hang\n"
      "  --corpus DIR       corpus root for --selftest (default\n"
      "                     tests/corpus)\n",
      argv0);
}

// Strict numeric flag parsing. atoi/atof silently turn garbage into 0 —
// which for --threads used to mean "one worker per hardware thread" — so the
// whole token must parse and land in range, or the run stops with exit 2.
bool ParseIntFlag(const char* flag, const char* text, long min_value,
                  long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < min_value) {
    std::fprintf(stderr, "error: %s expects an integer >= %ld, got '%s'\n",
                 flag, min_value, text);
    return false;
  }
  *out = v;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* text, double min_value,
                     double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  // !(v >= min) also rejects NaN; infinity is no more meaningful a budget.
  if (errno != 0 || end == text || *end != '\0' || !(v >= min_value) ||
      v > 1e12) {
    std::fprintf(stderr, "error: %s expects a finite number >= %g, got '%s'\n",
                 flag, min_value, text);
    return false;
  }
  *out = v;
  return true;
}

// "--protocols wifi,bt,ble" -> bundle mask. Strict: every name must be a
// registered bundle's cli_name, or the run stops with exit 2.
bool ParseProtocolsFlag(const char* text, std::uint32_t* mask) {
  const auto& registry = core::ProtocolRegistry::Instance();
  std::uint32_t out = 0;
  const std::string list = text;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const core::ProtocolBundle* bundle =
        name.empty() ? nullptr : registry.FindCli(name);
    if (bundle == nullptr) {
      std::string known;
      for (const auto& b : registry.bundles()) {
        if (!known.empty()) known += ",";
        known += b.cli_name;
      }
      std::fprintf(stderr,
                   "error: --protocols: unknown protocol '%s' (known: %s)\n",
                   name.c_str(), known.c_str());
      return false;
    }
    out |= core::BundleBit(bundle->protocol);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  *mask = out;
  return true;
}

dsp::SampleVec DemoEther() {
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 8;
  wifi.interval_us = 30000.0;
  rfdump::traffic::L2PingConfig bt;
  bt.count = 40;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 16000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bt, 24000);
  return ether.Render(std::max(ws.end_sample, bs.end_sample) + 16000);
}

void PrintReport(const core::MonitorReport& report, bool stats) {
  std::printf("%-12s %-10s %s\n", "time", "proto", "info");
  struct Line {
    double t;
    std::string text;
  };
  std::vector<Line> lines;
  for (const auto& f : report.wifi_frames) {
    const double t = static_cast<double>(f.start_sample) / dsp::kSampleRateHz;
    std::string info = "802.11b    ";
    info += rfdump::phy80211::RateName(f.header.rate);
    if (f.payload_decoded && f.fcs_ok) {
      if (const auto mac = rfdump::mac80211::ParseFrame(f.mpdu)) {
        info += std::string(" ") + rfdump::mac80211::FrameKindName(mac->kind);
        if (mac->kind == rfdump::mac80211::FrameKind::kData) {
          info += " " + rfdump::mac80211::ToString(mac->addr2) + " > " +
                  rfdump::mac80211::ToString(mac->addr1) + " (" +
                  std::to_string(f.mpdu.size()) + " B)";
        }
      } else {
        info += " undecodable MAC frame";
      }
    } else if (f.payload_decoded) {
      info += " BAD FCS";
    } else {
      info += " header only (rate beyond decoder)";
    }
    lines.push_back({t, std::move(info)});
  }
  for (const auto& p : report.bt_packets) {
    const double t = static_cast<double>(p.start_sample) / dsp::kSampleRateHz;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "bluetooth  LAP %06x ch %d %s %zu B crc %s", p.lap,
                  p.channel_index,
                  rfdump::phybt::PacketTypeName(p.packet.header.type),
                  p.packet.payload.size(), p.packet.crc_ok ? "ok" : "BAD");
    lines.push_back({t, buf});
  }
  // Registry-era protocols (and ZigBee, which never had a typed line here)
  // come from the generic protocol-tagged event view.
  for (const auto& e : report.events) {
    if (e.protocol == core::Protocol::kWifi80211b ||
        e.protocol == core::Protocol::kBluetooth) {
      continue;  // already listed via their typed shims above
    }
    const double t = static_cast<double>(e.start_sample) / dsp::kSampleRateHz;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-10s ch %d %zu B crc %s",
                  core::ProtocolName(e.protocol), e.channel, e.payload.size(),
                  e.crc_ok ? "ok" : "BAD");
    lines.push_back({t, buf});
  }
  // Detection-only runs: list the tagged intervals instead.
  if (report.wifi_frames.empty() && report.bt_packets.empty()) {
    for (const auto& d : report.detections) {
      const double t =
          static_cast<double>(d.start_sample) / dsp::kSampleRateHz;
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%-10s tagged by %s (conf %.2f, %lld "
                    "samples)",
                    core::ProtocolName(d.protocol), d.detector,
                    static_cast<double>(d.confidence),
                    static_cast<long long>(d.end_sample - d.start_sample));
      lines.push_back({t, buf});
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.t < b.t; });
  for (const auto& l : lines) {
    std::printf("%12.6f %s\n", l.t, l.text.c_str());
  }
  std::printf("\n%zu 802.11 frames, %zu bluetooth packets, %zu detections; "
              "CPU/real time %.3f\n",
              report.wifi_frames.size(), report.bt_packets.size(),
              report.detections.size(), report.CpuOverRealTime());
  if (stats) {
    std::printf("\nper-stage costs:\n");
    for (const auto& c : report.costs) {
      std::printf("  %-24s %9.4f s  (%llu samples)\n", c.name.c_str(),
                  c.cpu_seconds, static_cast<unsigned long long>(c.samples_in));
    }
  }
}

// Writes the registry's Prometheus text exposition to `dest` ("-" = stdout).
bool DumpMetrics(const std::string& dest) {
  const std::string text = rfdump::obs::Registry::Default().ExpositionText();
  if (dest == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(dest, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", dest.c_str());
    return false;
  }
  out << text;
  return true;
}

// Runs the conformance harness in-process: a naive-vs-rfdump differential
// sweep over canned mixed scenarios, then (when the checked-in corpus is
// reachable) the deterministic fuzz-corpus replay for every decoder target.
// Returns the process exit code: 0 only if every architecture agrees on
// every seed and no corpus input crashes or hangs a decoder.
int RunSelfTest(const std::string& corpus_root) {
  namespace rft = rfdump::testing;
  // Everything below enumerates the protocol registry: a newly registered
  // bundle appears in this listing, joins the differential sweep via its
  // differential_member flag, and gets its corpus replayed via its fuzz
  // hooks — with zero edits here.
  std::printf("[selftest] registered protocol bundles:\n");
  for (const auto& b : core::ProtocolRegistry::Instance().bundles()) {
    std::printf("  %-12s --protocols %-10s %s%s\n", b.name, b.cli_name,
                b.default_enabled ? "default-on" : "opt-in",
                b.fuzz_name != nullptr
                    ? (std::string("  fuzz:") + b.fuzz_name).c_str()
                    : "");
  }
  std::printf("[selftest] differential sweep: naive vs naive+energy vs "
              "rfdump@1 vs rfdump@N\n");
  rft::DifferentialPolicy policy;
  const std::uint64_t seeds[] = {11, 12, 13, 14};
  const auto results = rft::RunDifferentialSweep(seeds, policy);
  bool ok = true;
  for (const auto& r : results) {
    std::printf("%s", r.Summary().c_str());
    ok = ok && r.ok();
  }
  for (const auto& target : rft::EnumerateFuzzTargets()) {
    const std::string dir = corpus_root + "/" + target.corpus_dir;
    if (!std::filesystem::is_directory(dir)) {
      std::printf("[selftest] corpus dir %s not found; skipping %s\n",
                  dir.c_str(), target.name.c_str());
      continue;
    }
    rft::CorpusRunner::Config cfg;
    cfg.repro_dir = "selftest_repro";
    cfg.mutation_rounds = 1;
    rft::CorpusRunner runner(cfg);
    const auto result = runner.RunDirectory(target, dir);
    std::printf("%s", result.Summary(target.name).c_str());
    if (result.inputs_run == 0) {
      std::printf("[selftest] %s: corpus empty\n", target.name.c_str());
      ok = false;
    }
    ok = ok && result.ok();
  }
  std::printf("[selftest] %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// Replays `x` through an emulated hostile front end and monitors it with the
// fault-tolerant streaming path. Returns the aggregate report; prints
// per-block health lines as blocks complete. A non-stdout `metrics_path` is
// rewritten periodically so an operator can watch counters move mid-run.
core::MonitorReport MonitorImpaired(const dsp::SampleVec& x,
                                    core::StreamingMonitor::Config mcfg,
                                    const std::string& metrics_path,
                                    const std::string& quarantine_dir) {
  rfdump::emu::FrontEnd::Config fe;
  fe.drops_per_second = 2.0;
  fe.duplicates_per_second = 0.5;
  fe.nonfinite_per_second = 4.0;
  fe.clip_amplitude = 24.0f;
  fe.dc_offset = {0.05f, -0.02f};
  rfdump::emu::FrontEnd frontend(x, fe, /*seed=*/7);

  mcfg.pipeline.saturation_amplitude = fe.clip_amplitude;
  core::StreamingMonitor monitor(mcfg);
  core::MonitorReport report;
  monitor.on_wifi_frame = [&](const rfdump::phy80211::DecodedFrame& f) {
    report.wifi_frames.push_back(f);
  };
  monitor.on_bt_packet = [&](const rfdump::phybt::DecodedBtPacket& p) {
    report.bt_packets.push_back(p);
  };
  monitor.on_detection = [&](const core::Detection& d) {
    report.detections.push_back(d);
  };
  std::uint64_t blocks_seen = 0;
  const bool periodic_metrics = !metrics_path.empty() && metrics_path != "-";
  monitor.on_health = [&](const core::HealthReport& h) {
    std::printf(
        "[health] block @%9.3f s: %llu samples, gaps %u (%lld lost), "
        "dup %lld, sanitized %llu, sat %4.1f%%, stage %d, load %.3f, "
        "tag %llu/rej %llu/fwd %llu\n",
        static_cast<double>(h.block_start) / dsp::kSampleRateHz,
        static_cast<unsigned long long>(h.block_samples), h.gap_count,
        static_cast<long long>(h.gap_samples),
        static_cast<long long>(h.overlap_samples),
        static_cast<unsigned long long>(h.sanitized_samples),
        100.0 * h.saturation_fraction, h.shed_stage, h.block_load,
        static_cast<unsigned long long>(h.tagged_detections),
        static_cast<unsigned long long>(h.rejected_detections),
        static_cast<unsigned long long>(h.forwarded_intervals));
    // Refresh the exposition file every ~16 blocks (~0.8 s of ether at the
    // 50 ms block size): cheap enough, fresh enough to scrape.
    if (periodic_metrics && (++blocks_seen % 16 == 0)) {
      DumpMetrics(metrics_path);
    }
  };
  while (!frontend.Done()) {
    const auto seg = frontend.NextSegment();
    if (!seg.samples.empty()) monitor.PushSegment(seg.start_sample, seg.samples);
  }
  monitor.Flush();

  std::size_t drops = 0, bursts = 0;
  for (const auto& f : frontend.faults()) {
    if (f.kind == rfdump::emu::FaultKind::kDrop) ++drops;
    if (f.kind == rfdump::emu::FaultKind::kNonFinite) ++bursts;
  }
  std::printf(
      "\n[front end] injected %zu overrun gaps + %zu NaN bursts; monitor "
      "reported %zu gaps, shed stage now %d\n",
      drops, bursts, monitor.gaps().size(), monitor.shed_stage());
  const core::HealthSummary& sum = monitor.summary();
  std::printf(
      "[summary] %llu blocks / %llu samples: gaps %u (%lld lost), sanitized "
      "%llu, tagged %llu, rejected %llu, forwarded %llu, mean load %.3f, "
      "peak load %.3f (history ring holds %zu of %llu)\n",
      static_cast<unsigned long long>(sum.blocks),
      static_cast<unsigned long long>(sum.samples), sum.gap_count,
      static_cast<long long>(sum.gap_samples),
      static_cast<unsigned long long>(sum.sanitized_samples),
      static_cast<unsigned long long>(sum.tagged_detections),
      static_cast<unsigned long long>(sum.rejected_detections),
      static_cast<unsigned long long>(sum.forwarded_intervals),
      sum.MeanLoad(), sum.max_block_load, monitor.health().size(),
      static_cast<unsigned long long>(sum.blocks));
  if (sum.supervised_intervals > 0) {
    std::printf(
        "[supervisor] %llu intervals: %llu deadline, %llu exception, %llu "
        "skipped (breaker open), %llu quarantined; %llu breaker trips, %d "
        "open now\n",
        static_cast<unsigned long long>(sum.supervised_intervals),
        static_cast<unsigned long long>(sum.deadline_intervals),
        static_cast<unsigned long long>(sum.exception_intervals),
        static_cast<unsigned long long>(sum.skipped_intervals),
        static_cast<unsigned long long>(sum.quarantined_intervals),
        static_cast<unsigned long long>(sum.breaker_trips),
        monitor.supervisor().open_breakers());
  }
  if (!quarantine_dir.empty()) {
    const std::size_t n =
        rfdump::testing::WriteQuarantineDir(quarantine_dir,
                                            monitor.supervisor());
    std::printf("wrote %zu quarantined intervals to %s\n", n,
                quarantine_dir.c_str());
  }
  std::printf("\n");
  report.costs = monitor.costs();
  report.samples_total = monitor.samples_processed();
  return report;
}

// N-sensor in-process fleet over one shared ether (DESIGN.md §13): every
// sensor replays the same input through its own emu::FrontEnd (distinct
// clock skew per sensor; mild link chaos on sensor 0), monitors it with a
// StreamingMonitor whose sink feeds a SensorSession, and one Aggregator
// fuses the results. The fleet observability surfaces hang off this mode:
// `--fleet-status[=json]` renders Fleet::StatusReport(), `--metrics` gets
// the aggregator's federated exposition, and `--trace` gets the merged
// fleet trace (one chrome://tracing process row per node).
int RunFleet(const dsp::SampleVec& x, int nsensors,
             core::StreamingMonitor::Config mcfg, bool fleet_status,
             bool status_json, const std::string& metrics_path,
             const std::string& trace_path_out) {
  namespace net = rfdump::net;
  namespace obs = rfdump::obs;
  const bool tracing = !trace_path_out.empty();

  // One tracer per node (N sensors + the aggregator) so the merged trace
  // renders one process row each. The monitors' own pipeline spans go to
  // the shared default tracer (already enabled by main when tracing) and
  // are exported as one extra "monitors" row.
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  net::Fleet::Config fcfg;
  fcfg.aggregator.trust_floor = 0.0;
  fcfg.sensors.resize(static_cast<std::size_t>(nsensors));
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(nsensors));
  for (int i = 0; i < nsensors; ++i) {
    auto& s = fcfg.sensors[static_cast<std::size_t>(i)];
    // Distinct skews so the aggregator's clock alignment has work to do.
    offsets[static_cast<std::size_t>(i)] = (i - nsensors / 2) * 1'500;
    s.id = static_cast<std::uint16_t>(i);
    s.clock_offset_samples = offsets[static_cast<std::size_t>(i)];
    s.seed = 40 + static_cast<std::uint64_t>(i);
    s.session.metrics_every_n_heartbeats = 1;  // federation on
    tracers.push_back(std::make_unique<obs::Tracer>());
    if (tracing) tracers.back()->Enable();
    s.session.tracer = tracers.back().get();
    if (i == 0) {
      // Mild chaos on the first sensor's links: the status table and the
      // federated counters must stay truthful through drops and dups.
      s.uplink.drop_rate = 0.03;
      s.uplink.duplicate_rate = 0.02;
      s.uplink.corrupt_rate = 0.02;
      s.downlink.drop_rate = 0.03;
    }
  }
  tracers.push_back(std::make_unique<obs::Tracer>());  // aggregator's
  if (tracing) tracers.back()->Enable();
  fcfg.aggregator.tracer = tracers.back().get();
  net::Fleet fleet(fcfg);
  fleet.Run(4);  // hellos + clock samples before any events

  for (int i = 0; i < nsensors; ++i) {
    rfdump::emu::FrontEnd::Config fecfg;
    fecfg.clock_offset_samples = offsets[static_cast<std::size_t>(i)];
    rfdump::emu::FrontEnd fe(x, fecfg, 70 + static_cast<std::uint64_t>(i));
    core::StreamingMonitor::Config cfg = mcfg;
    cfg.sink = &fleet.sink(static_cast<std::size_t>(i));
    core::StreamingMonitor monitor(cfg);
    while (!fe.Done()) {
      const auto seg = fe.NextSegment();
      if (!seg.samples.empty()) {
        monitor.PushSegment(seg.start_sample, seg.samples);
      }
      fleet.Tick();  // pump frames across the links while the monitor runs
    }
    monitor.Flush();
    fleet.sink(static_cast<std::size_t>(i)).Flush();
    fleet.Run(4);
    if (fleet_status && !status_json) {
      std::printf("%s\n", fleet.StatusReport().ToText().c_str());
    }
  }
  fleet.SetLossless(true);
  fleet.Run(60);  // drain retransmits so the ledgers converge

  const net::FleetStatus status = fleet.StatusReport();
  if (fleet_status) {
    std::printf("%s\n",
                (status_json ? status.ToJson() : status.ToText()).c_str());
  }
  std::printf("[fleet] %zu/%d sensors live, %zu fused events, %llu "
              "cross-sensor merges\n",
              status.live_sensors, nsensors, status.fused_events,
              static_cast<unsigned long long>(status.merges));

  if (!metrics_path.empty()) {
    const std::string text = fleet.aggregator().FederatedExposition();
    if (metrics_path == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(metrics_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot write metrics to %s\n",
                     metrics_path.c_str());
        return 1;
      }
      out << text;
      std::printf("wrote federated metrics to %s\n", metrics_path.c_str());
    }
  }
  if (tracing) {
    std::vector<obs::ProcessTrace> procs;
    for (int i = 0; i < nsensors; ++i) {
      procs.push_back({"sensor-" + std::to_string(i),
                       static_cast<std::uint32_t>(i + 1),
                       tracers[static_cast<std::size_t>(i)]->Events()});
    }
    procs.push_back({"aggregator", static_cast<std::uint32_t>(nsensors + 1),
                     tracers.back()->Events()});
    procs.push_back({"monitors", static_cast<std::uint32_t>(nsensors + 2),
                     rfdump::obs::Tracer::Default().Events()});
    std::ofstream out(trace_path_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_path_out.c_str());
      return 1;
    }
    out << obs::ExportFleetChromeJson(procs);
    std::size_t spans = 0;
    for (const auto& p : procs) spans += p.events.size();
    std::printf("wrote merged fleet trace (%zu process rows, %zu spans) "
                "to %s\n",
                procs.size(), spans, trace_path_out.c_str());
  }
  return 0;
}

// "HOST:PORT" -> (host, port). Port 0 is allowed (ephemeral bind for
// --listen); anything else out of range or non-numeric fails.
bool ParseHostPort(const char* flag, const std::string& text,
                   std::string* host, std::uint16_t* port) {
  const auto colon = text.rfind(':');
  long p = -1;
  if (colon != std::string::npos && colon > 0) {
    char* end = nullptr;
    errno = 0;
    p = std::strtol(text.c_str() + colon + 1, &end, 10);
    if (errno != 0 || end == text.c_str() + colon + 1 || *end != '\0' ||
        p < 0 || p > 65535) {
      p = -1;
    }
  }
  if (p < 0) {
    std::fprintf(stderr,
                 "error: %s expects HOST:PORT (e.g. 127.0.0.1:7001), got "
                 "'%s'\n",
                 flag, text.c_str());
    return false;
  }
  *host = text.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

// Central aggregator over real TCP (DESIGN.md §14): accept sensors on
// host:port, fuse their streams, and exit once `expect` distinct sensors
// have connected, balanced their ledgers, and disconnected. The pump runs
// at ~2 ms per tick so the session heartbeat/RTO cadence on the other side
// of the wire sees a live peer.
int RunTcpListen(const std::string& host, std::uint16_t port, int expect,
                 const std::string& metrics_path,
                 const std::string& port_file, double max_seconds) {
  namespace net = rfdump::net;
  net::TcpListener listener(net::Syscalls::Real());
  if (!listener.Listen(host, port)) {
    std::fprintf(stderr, "error: cannot listen on %s:%u: %s\n", host.c_str(),
                 port, std::strerror(errno));
    return 1;
  }
  std::printf("[listen] aggregator on %s:%u, waiting for %d sensor%s\n",
              host.c_str(), listener.port(), expect, expect == 1 ? "" : "s");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
      return 1;
    }
    out << listener.port() << "\n";
  }

  net::AggregatorServer::Config scfg;
  scfg.aggregator.trust_floor = 0.0;
  net::AggregatorServer server(scfg);
  server.set_listener(&listener);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(max_seconds);
  std::int64_t now = 0;
  std::size_t known_last = 0;
  bool done = false;
  while (!done) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "error: timed out after %.0f s with %zu/%d sensors\n",
                   max_seconds, server.aggregator().sensor_ids().size(),
                   expect);
      return 1;
    }
    ++now;
    server.Pump(now);
    auto& agg = server.aggregator();
    const auto ids = agg.sensor_ids();
    if (ids.size() > known_last) {
      for (std::size_t i = known_last; i < ids.size(); ++i) {
        std::printf("[listen] sensor %u connected\n", ids[i]);
      }
      known_last = ids.size();
    }
    // Done when every expected sensor has shown up, balanced its ledger,
    // and hung up (drained clients close their transport, the server reaps
    // the EOF'd connection).
    if (ids.size() >= static_cast<std::size_t>(expect) &&
        server.connections() == 0) {
      done = true;
      for (const auto id : ids) {
        const auto& st = agg.status(id);
        std::uint64_t lost = 0;
        for (const auto& r : st.lost_applied) lost += r.last - r.first + 1;
        if (st.frames_delivered + lost != st.cum_seq) done = false;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  auto& agg = server.aggregator();
  for (const auto id : agg.sensor_ids()) {
    const auto& st = agg.status(id);
    std::uint64_t lost = 0;
    for (const auto& r : st.lost_applied) lost += r.last - r.first + 1;
    std::printf("[listen] sensor %u: ledger balanced (%llu frames, %llu "
                "declared lost)\n",
                id, static_cast<unsigned long long>(st.frames_delivered),
                static_cast<unsigned long long>(lost));
  }
  std::printf("[listen] fused %zu events from %zu sensors (%llu "
              "cross-sensor merges)\n",
              agg.fused().size(), agg.sensor_ids().size(),
              static_cast<unsigned long long>(agg.merges()));
  if (!metrics_path.empty()) {
    const std::string text = agg.FederatedExposition();
    if (metrics_path == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(metrics_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot write metrics to %s\n",
                     metrics_path.c_str());
        return 1;
      }
      out << text;
      std::printf("wrote federated metrics to %s\n", metrics_path.c_str());
    }
  }
  return 0;
}

// Sensor over real TCP: monitor the input, publish every classified event
// through a SensorSession, and let the SensorEndpoint ride the transport —
// reconnecting through the session's backoff when the aggregator side
// resets. Exits 0 only once the ledger is drained (every published frame
// acked or declared lost).
int RunTcpConnect(const dsp::SampleVec& x, const std::string& host,
                  std::uint16_t port, int sensor_id,
                  core::StreamingMonitor::Config mcfg, double max_seconds) {
  namespace net = rfdump::net;
  net::SensorSession::Config cfg;
  cfg.sensor_id = static_cast<std::uint16_t>(sensor_id);
  cfg.metrics_every_n_heartbeats = 1;  // federate local counters
  net::SensorSession session(cfg, static_cast<std::uint64_t>(sensor_id) + 1);
  auto& sys = net::Syscalls::Real();
  net::SensorEndpoint endpoint(
      session, [&sys, host, port](std::int64_t tick) {
        return net::TcpTransport::Dial(host, port, {}, sys, tick);
      });
  net::MonitorSensorSink sink(session);
  mcfg.sink = &sink;
  core::StreamingMonitor monitor(mcfg);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(max_seconds);
  std::int64_t now = 0;
  const auto pump = [&] {
    ++now;
    endpoint.Pump(now, now * 8000);
  };
  std::printf("[connect] sensor %d -> %s:%u\n", sensor_id, host.c_str(),
              port);
  rfdump::emu::FrontEnd frontend(x, {}, /*seed=*/1);
  while (!frontend.Done()) {
    const auto seg = frontend.NextSegment();
    if (!seg.samples.empty()) monitor.PushSegment(seg.start_sample, seg.samples);
    pump();
  }
  monitor.Flush();
  sink.Flush();
  while (session.unacked() != 0 ||
         session.state() != net::SensorSession::State::kConnected) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "error: timed out after %.0f s with %zu frames unacked "
                   "(state %d)\n",
                   max_seconds, session.unacked(),
                   static_cast<int>(session.state()));
      return 1;
    }
    pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto& st = session.stats();
  std::printf("[connect] drained: %llu events in %llu frames (%llu "
              "retransmits, %llu reconnects, %llu dials, %llu ring drops)\n",
              static_cast<unsigned long long>(sink.events_published()),
              static_cast<unsigned long long>(st.frames_sent),
              static_cast<unsigned long long>(st.retransmits),
              static_cast<unsigned long long>(st.reconnects),
              static_cast<unsigned long long>(endpoint.stats().dials),
              static_cast<unsigned long long>(st.ring_overflow_drops));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string arch = "rfdump";
  std::string detectors = "both";
  bool demo = false, no_demod = false, stats = false, collisions = false;
  bool waterfall = false, impair = false, selftest = false;
  std::string corpus_root = "tests/corpus";
  std::string pcap_path;
  std::string metrics_path;
  std::string trace_path_out;
  std::string quarantine_dir;
  double noise_floor = 1.0;
  double budget = 0.0;
  double deadline = 0.0;
  std::uint32_t protocols_mask = 0;
  bool protocols_set = false;
  int threads = 1;
  int fleet_sensors = 0;
  bool fleet_status = false, fleet_status_json = false;
  std::string listen_hp, connect_hp, port_file;
  int sensor_id = 0, expect_sensors = 1;
  double max_seconds = 120.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-r" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--arch" && i + 1 < argc) {
      arch = argv[++i];
    } else if (arg == "--detectors" && i + 1 < argc) {
      detectors = argv[++i];
    } else if (arg == "--protocols" && i + 1 < argc) {
      if (!ParseProtocolsFlag(argv[++i], &protocols_mask)) return 2;
      protocols_set = true;
    } else if (arg == "--simd" && i + 1 < argc) {
      const char* name = argv[++i];
      rfdump::dsp::simd::Tier tier;
      if (std::string(name) == "auto") {
        tier = rfdump::dsp::simd::DetectBestTier();
      } else if (!rfdump::dsp::simd::ParseTier(name, tier)) {
        std::fprintf(stderr,
                     "--simd: unknown tier '%s' (want scalar|sse2|avx2|auto)\n",
                     name);
        return 2;
      }
      if (!rfdump::dsp::simd::TierSupported(tier)) {
        std::fprintf(stderr, "--simd: tier '%s' not supported on this CPU\n",
                     name);
        return 2;
      }
      rfdump::dsp::simd::ForceTier(tier);
    } else if (arg == "--no-demod") {
      no_demod = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      long v = 0;
      if (!ParseIntFlag("--threads", argv[++i], 0, &v)) return 2;
      threads = static_cast<int>(std::min(v, 1024L));
    } else if (arg == "--collisions") {
      collisions = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--waterfall") {
      waterfall = true;
    } else if (arg == "--pcap" && i + 1 < argc) {
      pcap_path = argv[++i];
    } else if (arg == "--noise-floor" && i + 1 < argc) {
      if (!ParseDoubleFlag("--noise-floor", argv[++i], 1e-9, &noise_floor)) {
        return 2;
      }
    } else if (arg == "--impair") {
      impair = true;
    } else if (arg == "--budget" && i + 1 < argc) {
      if (!ParseDoubleFlag("--budget", argv[++i], 0.0, &budget)) return 2;
    } else if (arg == "--deadline" && i + 1 < argc) {
      if (!ParseDoubleFlag("--deadline", argv[++i], 0.0, &deadline)) return 2;
    } else if (arg == "--quarantine" && i + 1 < argc) {
      quarantine_dir = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path_out = argv[++i];
    } else if (arg == "--fleet" && i + 1 < argc) {
      long v = 0;
      if (!ParseIntFlag("--fleet", argv[++i], 2, &v)) return 2;
      fleet_sensors = static_cast<int>(std::min(v, 16L));
    } else if (arg == "--fleet-status") {
      fleet_status = true;
    } else if (arg == "--fleet-status=json") {
      fleet_status = true;
      fleet_status_json = true;
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_hp = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_hp = argv[++i];
    } else if (arg == "--sensor-id" && i + 1 < argc) {
      long v = 0;
      if (!ParseIntFlag("--sensor-id", argv[++i], 0, &v) || v > 65535) {
        if (v > 65535) {
          std::fprintf(stderr,
                       "error: --sensor-id expects an integer <= 65535\n");
        }
        return 2;
      }
      sensor_id = static_cast<int>(v);
    } else if (arg == "--expect" && i + 1 < argc) {
      long v = 0;
      if (!ParseIntFlag("--expect", argv[++i], 1, &v)) return 2;
      expect_sensors = static_cast<int>(std::min(v, 64L));
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--max-seconds" && i + 1 < argc) {
      if (!ParseDoubleFlag("--max-seconds", argv[++i], 1.0, &max_seconds)) {
        return 2;
      }
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_root = argv[++i];
    } else {
      PrintUsage(argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }
  if (selftest) return RunSelfTest(corpus_root);
  if (!listen_hp.empty() && !connect_hp.empty()) {
    std::fprintf(stderr, "error: --listen and --connect are mutually "
                         "exclusive (one role per process)\n");
    return 2;
  }
  if (!listen_hp.empty()) {
    if (fleet_sensors > 0 || impair) {
      std::fprintf(stderr, "error: --listen is its own mode; drop --fleet/"
                           "--impair\n");
      return 2;
    }
    std::string host;
    std::uint16_t port = 0;
    if (!ParseHostPort("--listen", listen_hp, &host, &port)) return 2;
    return RunTcpListen(host, port, expect_sensors, metrics_path, port_file,
                        max_seconds);
  }
  if (!connect_hp.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!ParseHostPort("--connect", connect_hp, &host, &port)) return 2;
    if (port == 0) {
      std::fprintf(stderr, "error: --connect needs a concrete port\n");
      return 2;
    }
    if (fleet_sensors > 0 || impair) {
      std::fprintf(stderr, "error: --connect is its own mode; drop --fleet/"
                           "--impair\n");
      return 2;
    }
  }
  if (trace_path.empty() && !demo) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (fleet_status && fleet_sensors == 0) {
    std::fprintf(stderr, "error: --fleet-status requires --fleet N\n");
    return 2;
  }
  if (fleet_sensors > 0 && (impair || arch != "rfdump")) {
    std::fprintf(stderr, "--fleet uses the rfdump streaming monitor\n");
    return 2;
  }
  if (!trace_path_out.empty()) {
    rfdump::obs::Tracer::Default().Enable();
  }

  dsp::SampleVec x;
  if (demo) {
    x = DemoEther();
    std::printf("[demo ether: 802.11b pings + bluetooth l2ping]\n");
  } else {
    try {
      x = rfdump::trace::ReadIqTrace(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  std::printf("monitoring %.3f s (%zu samples)\n\n",
              static_cast<double>(x.size()) / dsp::kSampleRateHz, x.size());

  if (threads == 0) {
    // Negative/garbage values were rejected at parse time; 0 means "auto".
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  // --protocols overrides the default bundle set: start from an empty mask
  // and enable exactly the named bundles (EnableBundle also switches on the
  // per-protocol detector/demod flags a bundle's hooks gate on).
  const auto apply_protocols = [&](core::RFDumpPipeline::Config& cfg) {
    if (!protocols_set) return;
    cfg.bundle_mask = 0;
    for (const auto& b : core::ProtocolRegistry::Instance().bundles()) {
      if ((protocols_mask & core::BundleBit(b.protocol)) != 0) {
        cfg.EnableBundle(b.protocol);
      }
    }
  };
  const auto apply_protocols_naive = [&](core::NaivePipeline::Config& cfg) {
    if (protocols_set) cfg.bundle_mask = protocols_mask;
  };
  if (!connect_hp.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!ParseHostPort("--connect", connect_hp, &host, &port)) return 2;
    core::StreamingMonitor::Config mcfg;
    mcfg.pipeline.timing_detectors = (detectors != "phase");
    mcfg.pipeline.phase_detectors = (detectors != "timing");
    mcfg.pipeline.collision_detector = collisions;
    mcfg.pipeline.microwave_detector = true;
    mcfg.pipeline.noise_floor_power = noise_floor;
    mcfg.pipeline.analysis.demodulate = !no_demod;
    mcfg.block_samples = 400'000;
    mcfg.overlap_samples = 160'000;
    mcfg.threads = threads;
    apply_protocols(mcfg.pipeline);
    return RunTcpConnect(x, host, port, sensor_id, mcfg, max_seconds);
  }
  if (fleet_sensors > 0) {
    core::StreamingMonitor::Config mcfg;
    mcfg.pipeline.timing_detectors = (detectors != "phase");
    mcfg.pipeline.phase_detectors = (detectors != "timing");
    mcfg.pipeline.collision_detector = collisions;
    mcfg.pipeline.microwave_detector = true;
    mcfg.pipeline.noise_floor_power = noise_floor;
    mcfg.pipeline.analysis.demodulate = !no_demod;
    mcfg.block_samples = 400'000;
    mcfg.overlap_samples = 160'000;
    mcfg.threads = threads;
    apply_protocols(mcfg.pipeline);
    return RunFleet(x, fleet_sensors, mcfg, fleet_status, fleet_status_json,
                    metrics_path, trace_path_out);
  }
  // One executor for the whole run: Executor(1) is serial inline (no pool),
  // wider widths fan the analysis stage out per interval x protocol.
  core::Executor executor(threads);

  core::MonitorReport report;
  if (impair) {
    if (arch != "rfdump") {
      std::fprintf(stderr, "--impair uses the rfdump streaming monitor\n");
      return 2;
    }
    core::StreamingMonitor::Config mcfg;
    mcfg.pipeline.timing_detectors = (detectors != "phase");
    mcfg.pipeline.phase_detectors = (detectors != "timing");
    mcfg.pipeline.collision_detector = collisions;
    mcfg.pipeline.microwave_detector = true;
    mcfg.pipeline.noise_floor_power = noise_floor;
    mcfg.pipeline.analysis.demodulate = !no_demod;
    mcfg.block_samples = 400'000;  // 50 ms blocks: visible health cadence
    mcfg.threads = threads;
    mcfg.cpu_budget = budget;
    mcfg.supervisor.demod_limits.max_cpu_seconds = deadline;
    apply_protocols(mcfg.pipeline);
    report = MonitorImpaired(x, mcfg, metrics_path, quarantine_dir);
  } else if (arch == "naive" || arch == "energy") {
    core::NaivePipeline::Config cfg;
    cfg.energy_gate = (arch == "energy");
    cfg.noise_floor_power = noise_floor;
    cfg.analysis.demodulate = !no_demod;
    cfg.executor = &executor;
    apply_protocols_naive(cfg);
    report = core::NaivePipeline(cfg).Process(x);
  } else if (arch == "rfdump") {
    core::RFDumpPipeline::Config cfg;
    cfg.timing_detectors = (detectors != "phase");
    cfg.phase_detectors = (detectors != "timing");
    cfg.collision_detector = collisions;
    cfg.microwave_detector = true;
    cfg.noise_floor_power = noise_floor;
    cfg.analysis.demodulate = !no_demod;
    cfg.executor = &executor;
    apply_protocols(cfg);
    report = core::RFDumpPipeline(cfg).Process(x);
  } else {
    std::fprintf(stderr, "unknown --arch %s\n", arch.c_str());
    return 2;
  }
  if (waterfall) {
    const auto gram = rfdump::core::ComputeSpectrogram(x);
    std::printf("%s\n", rfdump::core::RenderAscii(gram).c_str());
  }
  PrintReport(report, stats);
  if (!pcap_path.empty()) {
    const auto n = rfdump::trace::WritePcap(pcap_path, report.wifi_frames);
    std::printf("wrote %zu frames to %s (LINKTYPE_IEEE802_11)\n", n,
                pcap_path.c_str());
  }
  if (!metrics_path.empty() && !DumpMetrics(metrics_path)) return 1;
  if (!metrics_path.empty() && metrics_path != "-") {
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!trace_path_out.empty()) {
    auto& tracer = rfdump::obs::Tracer::Default();
    std::ofstream out(trace_path_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_path_out.c_str());
      return 1;
    }
    out << tracer.ExportChromeJson();
    std::printf("wrote %llu spans to %s (chrome://tracing / Perfetto)\n",
                static_cast<unsigned long long>(tracer.recorded()),
                trace_path_out.c_str());
    tracer.Disable();
  }
  return 0;
}
