// Bluetooth / Wi-Fi coexistence accounting: run both protocols through one
// monitored band and report, per protocol, how much airtime each consumed and
// how often they collided — the cross-technology visibility a single-NIC
// monitor cannot provide.

#include <cstdio>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

int main() {
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 16;
  wifi.interval_us = 30000.0;
  wifi.snr_db = 24.0;
  rfdump::traffic::L2PingConfig bt;
  bt.count = 70;
  bt.snr_db = 24.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 16000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bt, 20000);
  const auto x = ether.Render(std::max(ws.end_sample, bs.end_sample) + 16000);
  const auto total = static_cast<std::int64_t>(x.size());
  const double secs = static_cast<double>(total) / dsp::kSampleRateHz;

  core::RFDumpPipeline pipeline;
  const auto report = pipeline.Process(x);

  // Airtime per protocol from the detector view.
  std::int64_t wifi_air = 0, bt_air = 0;
  for (const auto& d : report.dispatched) {
    if (d.protocol == core::Protocol::kWifi80211b) {
      wifi_air += d.end_sample - d.start_sample;
    } else if (d.protocol == core::Protocol::kBluetooth) {
      bt_air += d.end_sample - d.start_sample;
    }
  }
  std::printf("monitored %.3f s of the 2.4 GHz band\n\n", secs);
  std::printf("%-12s %10s %10s %12s\n", "protocol", "packets", "airtime",
              "share");
  std::printf("%-12s %10zu %9.1fms %11.1f%%\n", "802.11b",
              report.wifi_frames.size(),
              static_cast<double>(wifi_air) / dsp::kSampleRateHz * 1e3,
              100.0 * static_cast<double>(wifi_air) /
                  static_cast<double>(total));
  std::printf("%-12s %10zu %9.1fms %11.1f%%\n", "bluetooth",
              report.bt_packets.size(),
              static_cast<double>(bt_air) / dsp::kSampleRateHz * 1e3,
              100.0 * static_cast<double>(bt_air) /
                  static_cast<double>(total));

  // Collision accounting from ground truth (the emulator knows).
  std::size_t collisions = 0;
  for (const auto& a : ether.truth()) {
    if (!a.visible || a.protocol != core::Protocol::kBluetooth) continue;
    for (const auto& b : ether.truth()) {
      if (!b.visible || b.protocol != core::Protocol::kWifi80211b) continue;
      if (a.start_sample < b.end_sample && b.start_sample < a.end_sample) {
        ++collisions;
        break;
      }
    }
  }
  std::printf("\ncross-technology collisions (BT packets hit by Wi-Fi): %zu\n",
              collisions);

  // Note the visibility limit the paper discusses: 8 of 79 hop channels.
  std::size_t bt_total = 0, bt_visible = 0;
  for (const auto& t : ether.truth()) {
    if (t.protocol != core::Protocol::kBluetooth) continue;
    ++bt_total;
    if (t.visible) ++bt_visible;
  }
  std::printf("Bluetooth hops visible in the 8 MHz capture: %zu/%zu "
              "(expect ~8/79 = %.0f%%)\n",
              bt_visible, bt_total, 100.0 * 8.0 / 79.0);
  return 0;
}
