// Wi-Fi diagnosis — the paper's motivating scenario (§2.1): "when diagnosing
// Wi-Fi problems, a full picture is critical because non-Wi-Fi users can
// reduce network capacity or cause high packet error rates".
//
// A single-NIC tool sees only that Wi-Fi frames are being lost. RFDump sees
// the microwave oven bursts that collide with them. This example runs both
// views over the same ether and prints the diagnosis.

#include <cstdio>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/core/scoring.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

int main() {
  // A Wi-Fi ping session sharing the band with a microwave oven.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 20;
  wifi.interval_us = 16000.0;
  wifi.snr_db = 22.0;
  rfdump::traffic::MicrowaveConfig oven;
  oven.snr_db = 26.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 16000);
  rfdump::traffic::GenerateMicrowave(ether, oven, 0, ws.end_sample + 16000);
  const auto x = ether.Render(ws.end_sample + 16000);
  const auto total = static_cast<std::int64_t>(x.size());

  // Monitor with microwave detection enabled.
  core::RFDumpPipeline::Config cfg;
  cfg.microwave_detector = true;
  core::RFDumpPipeline pipeline(cfg);
  const auto report = pipeline.Process(x);

  // The single-protocol view: how many Wi-Fi frames decoded cleanly?
  const auto wifi_truth = core::VisibleTruthWithin(
      ether.truth(), core::Protocol::kWifi80211b, total);
  std::size_t ok = 0;
  for (const auto& f : report.wifi_frames) {
    if (f.payload_decoded && f.fcs_ok) ++ok;
  }
  std::printf("802.11-only view: %zu/%zu frames decoded cleanly -> "
              "\"the network is lossy, cause unknown\"\n",
              ok, wifi_truth.size());

  // The RFDump view: who else is in the ether?
  std::size_t mw_bursts = 0;
  std::int64_t mw_samples = 0;
  for (const auto& d : report.detections) {
    if (d.protocol == core::Protocol::kMicrowave) {
      ++mw_bursts;
      mw_samples += d.end_sample - d.start_sample;
    }
  }
  std::printf("RFDump view: %zu microwave-oven bursts occupying %.0f%% of "
              "the band's airtime\n",
              mw_bursts,
              100.0 * static_cast<double>(mw_samples) /
                  static_cast<double>(total));

  // Correlate: which lost frames overlapped an oven burst?
  std::size_t lost = 0, lost_during_mw = 0;
  for (const auto& t : wifi_truth) {
    bool decoded = false;
    for (const auto& f : report.wifi_frames) {
      if (f.fcs_ok && std::llabs(f.start_sample - t.start_sample) < 400) {
        decoded = true;
        break;
      }
    }
    if (decoded) continue;
    ++lost;
    for (const auto& mw : ether.truth()) {
      if (mw.protocol != core::Protocol::kMicrowave || !mw.visible) continue;
      if (t.start_sample < mw.end_sample && mw.start_sample < t.end_sample) {
        ++lost_during_mw;
        break;
      }
    }
  }
  std::printf("diagnosis: %zu lost frames, %zu of them during oven bursts "
              "(%.0f%%)\n",
              lost, lost_during_mw,
              lost ? 100.0 * static_cast<double>(lost_during_mw) /
                         static_cast<double>(lost)
                   : 0.0);
  std::printf("=> the interference source is the microwave oven, not the "
              "Wi-Fi link.\n");
  return 0;
}
