#!/usr/bin/env bash
# Two-process fleet-over-TCP smoke test (DESIGN.md §14): an aggregator
# bound to an ephemeral loopback port and one demo sensor streaming to it.
# Passes only if the client drains its ledger and the server reports every
# sensor's ledger balanced. ctest runs this under the net-socket label;
# it is also the walkthrough from README "Fleet over TCP", scripted.
#
# usage: cli_tcp_loopback.sh /path/to/example_rfdump_cli
set -euo pipefail

cli="$1"
tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

"$cli" --listen 127.0.0.1:0 --expect 1 --port-file "$tmp/port" \
  --metrics "$tmp/federated.prom" --max-seconds 110 \
  >"$tmp/server.log" 2>&1 &
server_pid=$!

# Wait for the ephemeral bind; the port file appears once accepting.
for _ in $(seq 1 100); do
  [ -s "$tmp/port" ] && break
  sleep 0.1
done
if ! [ -s "$tmp/port" ]; then
  echo "FAIL: aggregator never wrote its port file" >&2
  cat "$tmp/server.log" >&2
  exit 1
fi
port="$(cat "$tmp/port")"

"$cli" --demo --connect "127.0.0.1:$port" --sensor-id 3 --max-seconds 110 \
  >"$tmp/client.log" 2>&1 || {
  echo "FAIL: sensor did not drain" >&2
  cat "$tmp/client.log" >&2
  exit 1
}

if ! wait "$server_pid"; then
  echo "FAIL: aggregator exited nonzero" >&2
  cat "$tmp/server.log" >&2
  exit 1
fi
server_pid=""

grep -q "sensor 3 connected" "$tmp/server.log"
grep -q "sensor 3: ledger balanced" "$tmp/server.log"
grep -q "fused .* events from 1 sensors" "$tmp/server.log"
grep -q "\[connect\] drained" "$tmp/client.log"
# The sensor's own counters federate into the aggregator's exposition.
grep -q 'sensor="3"' "$tmp/federated.prom" || {
  # Federation is compiled out under RFDUMP_OBS_ENABLED=0; an empty or
  # header-only exposition is acceptable then.
  grep -q "rfdump" "$tmp/federated.prom" || true
}
echo "PASS: fleet-over-TCP loopback demo drained and balanced"
