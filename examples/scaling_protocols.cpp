// Protocol-extensibility demonstration (the paper's scaling claim, §2.2):
// adding a protocol to RFDump costs one cheap metadata detector, because the
// expensive protocol-agnostic work (peak detection) is shared. This example
// monitors the same 4-protocol ether with 1, 2, 3 and 4 protocol detectors
// enabled and prints the marginal detection-stage cost of each addition.

#include <algorithm>
#include <cstdio>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

int main() {
  // An ether with all four technologies active.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 10;
  wifi.interval_us = 30000.0;
  rfdump::traffic::L2PingConfig bt;
  bt.count = 50;
  rfdump::traffic::ZigbeeConfig zb;
  zb.count = 30;
  rfdump::traffic::MicrowaveConfig mw;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 16000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bt, 20000);
  const auto zs = rfdump::traffic::GenerateZigbee(ether, zb, 24000);
  const auto end =
      std::max({ws.end_sample, bs.end_sample, zs.end_sample}) + 16000;
  rfdump::traffic::GenerateMicrowave(ether, mw, 0, end);
  const auto x = ether.Render(end);
  std::printf("ether: %.3f s with 802.11b + Bluetooth + ZigBee + microwave\n\n",
              static_cast<double>(x.size()) / dsp::kSampleRateHz);

  struct Step {
    const char* name;
    bool timing, phase, microwave, zigbee;
  };
  const Step steps[] = {
      {"1: 802.11 timing only", true, false, false, false},
      {"2: + phase (802.11 + BT)", true, true, false, false},
      {"3: + microwave timing", true, true, true, false},
      {"4: + ZigBee timing", true, true, true, true},
  };

  std::printf("%-28s %12s %12s %10s\n", "detectors enabled", "detect s",
              "peak s", "tags");
  double prev_detect = 0.0;
  for (const Step& s : steps) {
    core::RFDumpPipeline::Config cfg;
    cfg.timing_detectors = s.timing;
    cfg.phase_detectors = s.phase;
    cfg.microwave_detector = s.microwave;
    cfg.zigbee_detector = s.zigbee;
    cfg.analysis.demodulate = false;
    core::RFDumpPipeline pipeline(cfg);
    const auto report = pipeline.Process(x);
    const double detect = report.CostOf("detect/");
    const double peak = report.CostOf("detect/peak");
    std::printf("%-28s %12.4f %12.4f %10zu", s.name, detect, peak,
                report.detections.size());
    if (prev_detect > 0.0) {
      std::printf("   (%+.0f%% vs previous)",
                  100.0 * (detect - prev_detect) / prev_detect);
    }
    std::printf("\n");
    prev_detect = detect;
  }
  std::printf("\nThe shared peak-detection cost dominates and is paid once;\n"
              "each additional protocol's metadata detector adds only a\n"
              "small increment — the architecture scales to 5-10 protocols.\n");
  return 0;
}
