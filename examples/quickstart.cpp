// Quickstart: synthesize a heterogeneous ether (802.11b + Bluetooth +
// microwave oven), run the RFDump monitoring pipeline on it, and print a
// tcpdump-style listing of everything observed — the paper's headline
// use-case in ~100 lines.
//
//   ./example_quickstart            # synthesize + monitor
//   ./example_quickstart trace.iq   # also save the IQ trace for re-analysis

#include <cstdio>
#include <string>

#include "rfdump/core/pipeline.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/mac80211/frames.hpp"
#include "rfdump/trace/trace.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;

int main(int argc, char** argv) {
  // 1. Build a 0.4 s slice of a busy 2.4 GHz band.
  rfdump::emu::Ether ether;
  rfdump::traffic::WifiPingConfig wifi;
  wifi.count = 12;
  wifi.interval_us = 25000.0;
  wifi.snr_db = 22.0;
  rfdump::traffic::L2PingConfig bt;
  bt.count = 40;
  bt.snr_db = 22.0;
  const auto ws = rfdump::traffic::GenerateUnicastPing(ether, wifi, 16000);
  const auto bs = rfdump::traffic::GenerateL2Ping(ether, bt, 24000);
  const auto x = ether.Render(std::max(ws.end_sample, bs.end_sample) + 16000);
  std::printf("ether: %.3f s at %.0f Msps, %zu transmissions (%.0f%% busy)\n",
              static_cast<double>(x.size()) / dsp::kSampleRateHz,
              dsp::kSampleRateHz / 1e6, ether.truth().size(),
              100.0 * rfdump::emu::MediumUtilization(
                          ether.truth(), static_cast<std::int64_t>(x.size())));

  if (argc > 1) {
    rfdump::trace::WriteIqTrace(argv[1], x);
    std::printf("trace written to %s\n", argv[1]);
  }

  // 2. Monitor it with the full RFDump pipeline (detectors + demodulators).
  core::RFDumpPipeline pipeline;
  const auto report = pipeline.Process(x);

  // 3. Print what the ether contained, tcpdump-style.
  std::printf("\n%-12s %-10s %s\n", "time", "proto", "info");
  std::printf("------------------------------------------------------------\n");
  for (const auto& f : report.wifi_frames) {
    const double t = static_cast<double>(f.start_sample) / dsp::kSampleRateHz;
    std::string info = std::string(rfdump::phy80211::RateName(f.header.rate));
    if (f.payload_decoded && f.fcs_ok) {
      if (const auto mac = rfdump::mac80211::ParseFrame(f.mpdu)) {
        info += std::string(" ") + rfdump::mac80211::FrameKindName(mac->kind);
        if (mac->kind == rfdump::mac80211::FrameKind::kData) {
          info += " " + rfdump::mac80211::ToString(mac->addr2) + " > " +
                  rfdump::mac80211::ToString(mac->addr1);
          if (const auto seq = rfdump::mac80211::ParseIcmpEchoSeq(mac->body)) {
            info += " ICMP echo seq " + std::to_string(*seq);
          }
        }
      }
    } else {
      info += " (header only)";
    }
    std::printf("%12.6f %-10s %s\n", t, "802.11b", info.c_str());
  }
  for (const auto& p : report.bt_packets) {
    const double t = static_cast<double>(p.start_sample) / dsp::kSampleRateHz;
    char info[128];
    std::snprintf(info, sizeof(info),
                  "LAP %06x ch %d %s payload %zu B crc %s",
                  p.lap, p.channel_index,
                  rfdump::phybt::PacketTypeName(p.packet.header.type),
                  p.packet.payload.size(), p.packet.crc_ok ? "ok" : "BAD");
    std::printf("%12.6f %-10s %s\n", t, "bluetooth", info);
  }

  // 4. Where did the CPU go?
  std::printf("\nper-stage cost (CPU time / real time = %.2f):\n",
              report.CpuOverRealTime());
  for (const auto& c : report.costs) {
    std::printf("  %-24s %8.4f s\n", c.name.c_str(), c.cpu_seconds);
  }
  return 0;
}
