// fleet_demo — a two-sensor RFDump fleet over one emulated ether.
//
// Two front ends with different impairments and clock skew hear the same
// 802.11 ping exchange; each feeds a StreamingMonitor whose results travel
// to a central aggregator over faulty links (drops + corruption on sensor
// 0's uplink). The demo prints what the transport had to survive and the
// fused, deduplicated, clock-aligned view the aggregator ends with.
//
// Usage:
//   example_fleet_demo            # defaults: 6 pings, lossy uplink
//
// Walkthrough in README.md ("Multi-sensor fleet"); design in DESIGN.md §12.

#include <cstdio>
#include <string>

#include "rfdump/core/streaming.hpp"
#include "rfdump/emu/ether.hpp"
#include "rfdump/emu/frontend.hpp"
#include "rfdump/net/fleet.hpp"
#include "rfdump/traffic/traffic.hpp"

namespace core = rfdump::core;
namespace dsp = rfdump::dsp;
namespace emu = rfdump::emu;
namespace net = rfdump::net;

int main() {
  // One shared ether: 6 wifi pings (request + ACK each).
  emu::Ether ether(emu::Ether::Config{}, 77);
  rfdump::traffic::WifiPingConfig ping;
  ping.count = 6;
  ping.interval_us = 20'000.0;
  ping.snr_db = 25.0;
  const auto session = rfdump::traffic::GenerateUnicastPing(ether, ping, 8000);
  const auto samples = ether.Render(session.end_sample + 8000);
  const auto truth = ether.VisibleTruth(core::Protocol::kWifi80211b);
  std::printf("ether: %zu ground-truth 802.11 transmissions over %.1f ms\n",
              truth.size(),
              1e3 * static_cast<double>(samples.size()) / dsp::kSampleRateHz);

  // Fleet: two sensors, skewed clocks, sensor 0's links drop and corrupt.
  const std::int64_t offsets[2] = {2'000, -1'500};
  net::Fleet::Config fcfg;
  fcfg.sensors.resize(2);
  for (int i = 0; i < 2; ++i) {
    fcfg.sensors[i].id = static_cast<std::uint16_t>(i);
    fcfg.sensors[i].clock_offset_samples = offsets[i];
    fcfg.sensors[i].seed = 40 + static_cast<std::uint64_t>(i);
  }
  fcfg.sensors[0].uplink.drop_rate = 0.20;
  fcfg.sensors[0].uplink.corrupt_rate = 0.25;
  // Fleet observability (DESIGN.md §13): each session ships a MetricsMsg
  // snapshot with every heartbeat, so the aggregator's federated exposition
  // below carries both sensors' counters.
  for (auto& s : fcfg.sensors) s.session.metrics_every_n_heartbeats = 1;
  net::Fleet fleet(fcfg);
  fleet.Run(4);  // hellos + clock samples before any events

  // Each sensor monitors the ether through its own impaired front end; the
  // sink bridges decoded frames into the sensor's session, and Tick() pumps
  // frames across the links while the monitor runs.
  for (int i = 0; i < 2; ++i) {
    emu::FrontEnd::Config fecfg;
    fecfg.clock_offset_samples = offsets[i];
    if (i == 1) fecfg.dc_offset = dsp::cfloat(0.02f, -0.01f);
    emu::FrontEnd fe(samples, fecfg, 70 + static_cast<std::uint64_t>(i));

    core::StreamingMonitor::Config mcfg;
    mcfg.block_samples = 400'000;
    mcfg.overlap_samples = 160'000;
    mcfg.sink = &fleet.sink(static_cast<std::size_t>(i));
    core::StreamingMonitor monitor(mcfg);
    while (!fe.Done()) {
      const auto seg = fe.NextSegment();
      if (!seg.samples.empty()) {
        monitor.PushSegment(seg.start_sample, seg.samples);
      }
      fleet.Tick();
    }
    monitor.Flush();
    fleet.sink(static_cast<std::size_t>(i)).Flush();
    fleet.Run(4);
  }

  // Drain: no new link faults, so retransmission converges.
  fleet.SetLossless(true);
  fleet.Run(60);

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    std::size_t drops = 0, corrupt = 0, dup = 0;
    for (const auto& f : fleet.uplink(i).faults()) {
      if (f.kind == net::LinkFaultKind::kDrop) ++drops;
      if (f.kind == net::LinkFaultKind::kCorrupt) ++corrupt;
      if (f.kind == net::LinkFaultKind::kDuplicate) ++dup;
    }
    std::printf("sensor %zu uplink injected: %zu drops, %zu corruptions, "
                "%zu duplicates\n",
                i, drops, corrupt, dup);
  }

  std::printf("\n%-8s %8s %8s %8s %8s %8s %8s %7s\n", "sensor", "sent",
              "retx", "deliv", "dup", "corrupt", "offset", "trust");
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto ss = fleet.session(i).stats();
    const auto& as = fleet.aggregator().status(fleet.sensor_id(i));
    std::printf("%-8zu %8llu %8llu %8llu %8llu %8llu %8lld %7.2f\n", i,
                static_cast<unsigned long long>(ss.frames_sent),
                static_cast<unsigned long long>(ss.retransmits),
                static_cast<unsigned long long>(as.frames_delivered),
                static_cast<unsigned long long>(as.duplicates_dropped),
                static_cast<unsigned long long>(as.corrupt_dropped),
                static_cast<long long>(as.clock_offset), as.trust);
  }

  std::printf("\nfused view (global timeline — each sensor's clock skew "
              "undone):\n%-12s %-12s %9s %s\n",
              "time", "proto", "bytes", "witnesses");
  for (const auto& f : fleet.aggregator().fused()) {
    char witnesses[16];
    int n = 0;
    for (int b = 0; b < 8 && n < 14; ++b) {
      if (f.sensor_mask & (1u << b)) {
        if (n) witnesses[n++] = '+';
        witnesses[n++] = static_cast<char>('0' + b);
      }
    }
    witnesses[n] = '\0';
    std::printf("%12.6f %-12s %9u %s\n",
                static_cast<double>(f.start) / dsp::kSampleRateHz,
                core::ProtocolName(f.protocol), f.payload_bytes, witnesses);
  }
  std::printf("\n%zu fused events from %zu ground-truth transmissions; "
              "%llu cross-sensor merges (no duplicates)\n",
              fleet.aggregator().fused().size(), truth.size(),
              static_cast<unsigned long long>(fleet.aggregator().merges()));

  // The operator surfaces the CLI exposes as --fleet-status / --metrics:
  // the one-screen status table and the federated Prometheus exposition
  // (every sensor's session counters under sensor="<id>" labels).
  std::printf("\n%s\n", fleet.StatusReport().ToText().c_str());
  const std::string expo = fleet.aggregator().FederatedExposition();
  std::size_t lines = 0;
  for (const char c : expo) lines += (c == '\n');
  std::printf("federated exposition: %zu lines; sensor 0 excerpt:\n", lines);
  std::size_t shown = 0;
  std::size_t pos = 0;
  while (shown < 4 && pos < expo.size()) {
    const std::size_t eol = expo.find('\n', pos);
    const std::string line = expo.substr(pos, eol - pos);
    pos = (eol == std::string::npos) ? expo.size() : eol + 1;
    if (line.find("sensor=\"0\"") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
  }
  return 0;
}
